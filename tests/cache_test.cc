// Correctness of the content-addressed caching layer: util::Hash128 /
// Hasher primitives, core::InstanceFingerprint sensitivity, SolveCache LRU
// mechanics, the staged-pipeline cache seams (result and plan/graph tiers,
// every CacheMode), and the engine::Server wiring (hit/miss counters,
// deterministic single-flight collapse, and the acceptance criterion that
// a cache hit is bit-identical to a cold solve at 1, 2, and 8 dispatch
// workers).

#include <memory>
#include <string>
#include <vector>

#include "core/fingerprint.h"
#include "engine/engine.h"
#include "engine/fingerprint.h"
#include "engine/server.h"
#include "engine/solve_cache.h"
#include "gtest/gtest.h"
#include "stress_util.h"
#include "test_util.h"
#include "util/hash.h"

namespace rdbsc {
namespace {

using engine::CacheMode;
using engine::CacheStats;
using engine::ServerConfig;
using engine::SolveCache;
using engine::SolveCacheConfig;
using test::SmallInstance;

// --- Hash primitives -----------------------------------------------------

TEST(Hash128Test, ToHexIsFixedWidthHiFirst) {
  util::Hash128 h{0x1, 0xab};
  EXPECT_EQ(h.ToHex(), "000000000000000100000000000000ab");
  EXPECT_EQ((util::Hash128{}.ToHex()),
            "00000000000000000000000000000000");
}

TEST(HashCombineTest, OrderSensitive) {
  uint64_t ab = util::HashCombine(util::HashCombine(0, 1), 2);
  uint64_t ba = util::HashCombine(util::HashCombine(0, 2), 1);
  EXPECT_NE(ab, ba);
}

TEST(HasherTest, DeterministicAndFieldBoundarySensitive) {
  auto digest = [](auto&& fill) {
    util::Hasher hasher;
    fill(hasher);
    return hasher.Digest();
  };
  // Same stream -> same digest (machine-independent by construction).
  EXPECT_EQ(digest([](util::Hasher& h) { h.Mix(std::string_view("abc")); }),
            digest([](util::Hasher& h) { h.Mix(std::string_view("abc")); }));
  // The length prefix keeps adjacent string fields from sliding into each
  // other ("ab" + "c" must not collide with "abc").
  EXPECT_NE(digest([](util::Hasher& h) {
              h.Mix(std::string_view("ab")).Mix(std::string_view("c"));
            }),
            digest([](util::Hasher& h) { h.Mix(std::string_view("abc")); }));
  // Doubles hash by bit pattern: -0.0 and 0.0 are distinct identities.
  EXPECT_NE(digest([](util::Hasher& h) { h.Mix(0.0); }),
            digest([](util::Hasher& h) { h.Mix(-0.0); }));
}

// --- Instance fingerprints -----------------------------------------------

TEST(InstanceFingerprintTest, EqualContentHashesEqual) {
  EXPECT_EQ(core::InstanceFingerprint(SmallInstance(7)),
            core::InstanceFingerprint(SmallInstance(7)));
  EXPECT_NE(core::InstanceFingerprint(SmallInstance(7)),
            core::InstanceFingerprint(SmallInstance(8)));
}

TEST(InstanceFingerprintTest, SensitiveToEveryInstanceField) {
  core::Instance base = SmallInstance(7);
  const util::Hash128 fp = core::InstanceFingerprint(base);

  auto tasks = base.tasks();
  tasks[0].beta += 1e-9;
  EXPECT_NE(core::InstanceFingerprint(core::Instance(
                tasks, base.workers(), base.now(), base.policy())),
            fp);

  auto workers = base.workers();
  workers[0].confidence -= 1e-9;
  EXPECT_NE(core::InstanceFingerprint(core::Instance(
                base.tasks(), workers, base.now(), base.policy())),
            fp);

  EXPECT_NE(core::InstanceFingerprint(core::Instance(
                base.tasks(), base.workers(), base.now() + 1e-9,
                base.policy())),
            fp);
  EXPECT_NE(core::InstanceFingerprint(core::Instance(
                base.tasks(), base.workers(), base.now(),
                core::ArrivalPolicy::kAllowWait)),
            fp);
}

// --- SolveCache LRU mechanics --------------------------------------------

EngineResult ResultWithEdges(int64_t edges) {
  EngineResult result;
  result.plan.edges = edges;
  return result;
}

TEST(SolveCacheTest, ResultTierIsStrictLru) {
  SolveCacheConfig config;
  config.result_capacity = 2;
  config.num_shards = 1;  // one shard so the eviction order is total
  SolveCache cache(config);
  const util::Hash128 k1{0, 1}, k2{0, 2}, k3{0, 3}, k4{0, 4};

  cache.InsertResult(k1, ResultWithEdges(1));
  cache.InsertResult(k2, ResultWithEdges(2));
  cache.InsertResult(k3, ResultWithEdges(3));  // evicts k1 (oldest)
  EXPECT_EQ(cache.LookupResult(k1), nullptr);

  // Touch k2, then insert k4: the untouched k3 is now the LRU victim.
  ASSERT_NE(cache.LookupResult(k2), nullptr);
  cache.InsertResult(k4, ResultWithEdges(4));
  EXPECT_EQ(cache.LookupResult(k3), nullptr);
  ASSERT_NE(cache.LookupResult(k2), nullptr);
  EXPECT_EQ(cache.LookupResult(k2)->plan.edges, 2);

  CacheStats stats = cache.Stats();
  EXPECT_EQ(stats.result_insertions, 4);
  EXPECT_EQ(stats.result_evictions, 2);
  EXPECT_EQ(stats.result_entries, 2);
}

TEST(SolveCacheTest, InsertClearsProvenanceAndRefreshKeepsOneEntry) {
  SolveCache cache;
  const util::Hash128 key{1, 1};
  EngineResult stale = ResultWithEdges(9);
  stale.from_cache = true;
  stale.plan.from_cache = true;
  cache.InsertResult(key, stale);
  auto hit = cache.LookupResult(key);
  ASSERT_NE(hit, nullptr);
  EXPECT_FALSE(hit->from_cache);
  EXPECT_FALSE(hit->plan.from_cache);

  cache.InsertResult(key, ResultWithEdges(11));  // refresh, not a new entry
  EXPECT_EQ(cache.Stats().result_entries, 1);
  EXPECT_EQ(cache.LookupResult(key)->plan.edges, 11);
}

TEST(SolveCacheTest, ZeroCapacityDisablesOneTierOnly) {
  SolveCacheConfig config;
  config.graph_capacity = 0;  // results only -- never pin a heavy graph
  config.num_shards = 4;
  SolveCache cache(config);
  const util::Hash128 key{3, 9};

  core::Instance instance = SmallInstance(3, 4, 7);
  auto graph = std::make_shared<const core::CandidateGraph>(
      core::CandidateGraph::Build(instance));
  cache.InsertGraph(key, graph, GraphPlan{});
  EXPECT_EQ(cache.LookupGraph(key, nullptr), nullptr);
  EXPECT_EQ(cache.Stats().graph_entries, 0);
  EXPECT_EQ(cache.Stats().graph_insertions, 0);  // dropped, not evicted

  cache.InsertResult(key, ResultWithEdges(5));  // the other tier still works
  ASSERT_NE(cache.LookupResult(key), nullptr);
  EXPECT_EQ(cache.Stats().result_entries, 1);
}

TEST(SolveCacheTest, GraphTierRoundTripsPlanAndClearKeepsCounters) {
  SolveCache cache;
  const util::Hash128 key{2, 7};
  core::Instance instance = SmallInstance(3, 4, 7);
  auto graph = std::make_shared<const core::CandidateGraph>(
      core::CandidateGraph::Build(instance));
  GraphPlan plan;
  plan.used_grid_index = false;
  plan.edges = graph->NumEdges();
  cache.InsertGraph(key, graph, plan);

  GraphPlan got;
  auto hit = cache.LookupGraph(key, &got);
  ASSERT_EQ(hit, graph);  // the exact shared object, not a copy
  EXPECT_EQ(got.edges, graph->NumEdges());
  EXPECT_FALSE(got.from_cache);

  cache.Clear();
  EXPECT_EQ(cache.LookupGraph(key, nullptr), nullptr);
  CacheStats stats = cache.Stats();
  EXPECT_EQ(stats.graph_entries, 0);
  EXPECT_EQ(stats.graph_hits, 1);      // counters survive Clear
  EXPECT_EQ(stats.graph_misses, 1);
  EXPECT_EQ(stats.graph_insertions, 1);
}

// --- Pipeline cache seams ------------------------------------------------

EngineConfig SolverEngineConfig(const std::string& name) {
  EngineConfig config;
  config.solver_name = name;
  config.solver_options.seed = 5;
  return config;
}

// The acceptance criterion at the Engine layer, per registered solver: a
// result-tier hit replays the cold solve bit for bit.
TEST(CachePipelineTest, HitIsBitIdenticalToColdSolvePerSolver) {
  const core::Instance instance = SmallInstance(3, 4, 7);  // EXACT-sized
  for (const char* name : {"dc", "exact", "greedy", "gtruth", "sampling",
                           "worker-greedy"}) {
    SCOPED_TRACE(name);
    Engine cold = Engine::Create(SolverEngineConfig(name)).value();
    const std::string cold_print = engine::ResultFingerprint(
        cold.Run(instance));

    SolveCache cache;
    Engine cached = Engine::Create(SolverEngineConfig(name)).value();
    RunControls controls;
    controls.cache = &cache;
    util::StatusOr<EngineResult> first = cached.Run(instance, controls);
    ASSERT_TRUE(first.ok());
    EXPECT_FALSE(first.value().from_cache);
    util::StatusOr<EngineResult> second = cached.Run(instance, controls);
    ASSERT_TRUE(second.ok());
    EXPECT_TRUE(second.value().from_cache);
    EXPECT_EQ(engine::ResultFingerprint(second), cold_print);
    EXPECT_EQ(engine::ResultFingerprint(first), cold_print);
  }
}

TEST(CachePipelineTest, CacheModesReadAndWriteIndependently) {
  const core::Instance instance = SmallInstance(9);
  Engine engine = Engine::Create(SolverEngineConfig("greedy")).value();
  SolveCache cache;
  RunControls controls;
  controls.cache = &cache;

  controls.cache_mode = CacheMode::kOff;
  ASSERT_TRUE(engine.Run(instance, controls).ok());
  EXPECT_EQ(cache.Stats().result_entries, 0);
  EXPECT_EQ(cache.Stats().result_misses, 0);  // kOff never even looks

  controls.cache_mode = CacheMode::kReadOnly;
  ASSERT_TRUE(engine.Run(instance, controls).ok());
  EXPECT_EQ(cache.Stats().result_entries, 0);  // probe must not populate
  EXPECT_EQ(cache.Stats().result_misses, 1);

  controls.cache_mode = CacheMode::kWriteOnly;
  util::StatusOr<EngineResult> warm = engine.Run(instance, controls);
  EXPECT_FALSE(warm.value().from_cache);  // warming always solves cold
  warm = engine.Run(instance, controls);
  EXPECT_FALSE(warm.value().from_cache);
  EXPECT_EQ(cache.Stats().result_entries, 1);

  controls.cache_mode = CacheMode::kReadOnly;  // now the probe hits
  util::StatusOr<EngineResult> hit = engine.Run(instance, controls);
  EXPECT_TRUE(hit.value().from_cache);

  // kDefault with a cache attached means kReadWrite.
  controls.cache_mode = CacheMode::kDefault;
  EXPECT_TRUE(engine.Run(instance, controls).value().from_cache);
}

TEST(CachePipelineTest, GraphTierIsSharedAcrossSolvers) {
  const core::Instance instance = SmallInstance(4);
  EngineConfig greedy_config = SolverEngineConfig("greedy");
  greedy_config.graph_strategy = GraphStrategy::kBruteForce;
  EngineConfig sampling_config = SolverEngineConfig("sampling");
  sampling_config.graph_strategy = GraphStrategy::kBruteForce;

  Engine cold = Engine::Create(sampling_config).value();
  const std::string cold_print =
      engine::ResultFingerprint(cold.Run(instance));

  SolveCache cache;
  RunControls controls;
  controls.cache = &cache;
  Engine greedy = Engine::Create(greedy_config).value();
  util::StatusOr<EngineResult> first = greedy.Run(instance, controls);
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first.value().plan.from_cache);

  // Different solver -> result-tier miss, but the graph (same instance,
  // same resolved build decision) is reused -- and the solve on the
  // reused graph is still bit-identical to a cold one.
  Engine sampling = Engine::Create(sampling_config).value();
  util::StatusOr<EngineResult> second = sampling.Run(instance, controls);
  ASSERT_TRUE(second.ok());
  EXPECT_FALSE(second.value().from_cache);
  EXPECT_TRUE(second.value().plan.from_cache);
  EXPECT_EQ(engine::ResultFingerprint(second), cold_print);

  CacheStats stats = cache.Stats();
  EXPECT_EQ(stats.graph_misses, 1);
  EXPECT_EQ(stats.graph_hits, 1);
  EXPECT_EQ(stats.result_hits, 0);
  EXPECT_EQ(stats.result_misses, 2);
}

TEST(CachePipelineTest, FailedSolvesAreNeverCached) {
  // A budget that trips mid-build must not poison the cache for the next,
  // unbudgeted run.
  const core::Instance instance = SmallInstance(1, 220, 220);
  Engine engine = Engine::Create(SolverEngineConfig("dc")).value();
  SolveCache cache;
  RunControls controls;
  controls.cache = &cache;
  controls.budget_seconds = 1e-9;
  util::StatusOr<EngineResult> starved = engine.Run(instance, controls);
  ASSERT_FALSE(starved.ok());
  EXPECT_EQ(starved.status().code(), util::StatusCode::kDeadlineExceeded);
  EXPECT_EQ(cache.Stats().result_entries, 0);
  EXPECT_EQ(cache.Stats().graph_entries, 0);

  controls.budget_seconds = -1.0;
  util::StatusOr<EngineResult> healthy = engine.Run(instance, controls);
  ASSERT_TRUE(healthy.ok());
  EXPECT_FALSE(healthy.value().from_cache);
}

// --- Server wiring -------------------------------------------------------

ServerConfig CachingServerConfig(int num_workers) {
  ServerConfig config;
  config.engine.solver_name = "dc";
  config.engine.solver_options.seed = 7;
  config.engine.validate_instances = false;
  config.num_workers = num_workers;
  config.max_queue_depth = 64;
  config.cache_mode = CacheMode::kReadWrite;
  return config;
}

TEST(ServerCacheTest, RepeatedSubmissionHitsAndCountersTrack) {
  auto server =
      std::move(engine::Server::Create(CachingServerConfig(1)).value());
  const core::Instance instance = SmallInstance(21);

  engine::Ticket first = server->Submit(instance).value();
  const util::StatusOr<EngineResult>& cold = first.Wait();
  ASSERT_TRUE(cold.ok());
  EXPECT_FALSE(cold.value().from_cache);

  engine::Ticket second = server->Submit(instance).value();
  const util::StatusOr<EngineResult>& warm = second.Wait();
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm.value().from_cache);
  EXPECT_EQ(engine::ResultFingerprint(warm), engine::ResultFingerprint(cold));

  // Per-request opt-out: kOff solves cold and stays invisible to counters.
  engine::SubmitControls opt_out;
  opt_out.cache = CacheMode::kOff;
  engine::Ticket third = server->Submit(instance, opt_out).value();
  ASSERT_TRUE(third.Wait().ok());
  EXPECT_FALSE(third.Wait().value().from_cache);

  server->Shutdown(engine::ShutdownMode::kDrain);
  engine::ServerStats stats = server->Stats();
  EXPECT_EQ(stats.cache_hits, 1);
  EXPECT_EQ(stats.cache_misses, 1);
  EXPECT_EQ(stats.collapsed, 0);
  CacheStats cache_stats = server->GetCacheStats();
  EXPECT_EQ(cache_stats.result_hits, 1);
  EXPECT_EQ(cache_stats.result_insertions, 1);
}

TEST(ServerCacheTest, SingleFlightCollapsesQueuedDuplicates) {
  // One dispatch worker, gated by a deliberately heavy request: the two
  // identical requests behind it are both queued when the second arrives,
  // so the collapse is deterministic, not a race.
  auto server =
      std::move(engine::Server::Create(CachingServerConfig(1)).value());
  engine::SubmitControls gate_controls;
  gate_controls.priority = 10;
  engine::Ticket gate =
      server->Submit(SmallInstance(1, 220, 220), gate_controls).value();

  const core::Instance dup = SmallInstance(33);
  engine::Ticket leader = server->Submit(dup).value();
  engine::Ticket follower = server->Submit(dup).value();

  ASSERT_TRUE(gate.Wait().ok());
  const util::StatusOr<EngineResult>& led = leader.Wait();
  const util::StatusOr<EngineResult>& followed = follower.Wait();
  ASSERT_TRUE(led.ok());
  ASSERT_TRUE(followed.ok());
  EXPECT_EQ(engine::ResultFingerprint(led),
            engine::ResultFingerprint(followed));

  server->Shutdown(engine::ShutdownMode::kDrain);
  engine::ServerStats stats = server->Stats();
  EXPECT_EQ(stats.admitted, 3);
  EXPECT_EQ(stats.collapsed, 1);
  // The follower never dispatched: the gate and the leader solved cold.
  EXPECT_EQ(stats.cache_misses, 2);
  EXPECT_EQ(stats.cache_hits, 0);
  EXPECT_EQ(stats.completed, 3);
}

TEST(ServerCacheTest, UrgentFollowerPromotesQueuedLeader) {
  // No priority inversion through single-flight: a follower more urgent
  // than its queued leader promotes the leader. Sequence (one worker):
  //   gate(p10) runs | queued: leader L(p0, instance X), M(p5, heavy)
  //   follower D(p9, X) collapses onto L and promotes it to p9
  // so after the gate the worker must pop L (now p9) before M -- without
  // the promotion M(p5) would dispatch first and L/D would wait behind
  // the heavy request they outrank.
  auto server =
      std::move(engine::Server::Create(CachingServerConfig(1)).value());
  engine::SubmitControls gate_controls;
  gate_controls.priority = 10;
  engine::Ticket gate =
      server->Submit(SmallInstance(1, 220, 220), gate_controls).value();

  const core::Instance dup = SmallInstance(55);
  engine::SubmitControls low;
  low.priority = 0;
  engine::Ticket leader = server->Submit(dup, low).value();

  engine::SubmitControls mid;
  mid.priority = 5;
  engine::Ticket heavy = server->Submit(SmallInstance(2, 220, 220), mid)
                             .value();

  engine::SubmitControls urgent;
  urgent.priority = 9;
  engine::Ticket follower = server->Submit(dup, urgent).value();

  ASSERT_TRUE(leader.Wait().ok());
  ASSERT_TRUE(follower.Wait().ok());
  // The promoted leader (and its follower) finished while the mid-
  // priority heavy request is still on the worker.
  EXPECT_EQ(heavy.TryGet(), nullptr);
  EXPECT_EQ(engine::ResultFingerprint(leader.Wait()),
            engine::ResultFingerprint(follower.Wait()));

  server->Shutdown(engine::ShutdownMode::kDrain);
  EXPECT_EQ(server->Stats().collapsed, 1);
}

TEST(ServerCacheTest, WriteOnlyDuplicateDoesNotClobberSingleFlightRegistry) {
  // Regression: write-only submissions skip the collapse check but are
  // still single-flight eligible, so a duplicate's registration attempt
  // no-ops -- it must NOT mark itself as the registry owner, or its
  // completion erases the real leader's entry and later duplicates stop
  // collapsing. Sequence (one worker, pops strictly by priority):
  //   gate1(p10) runs | queued: W2(p5, wo dup) -> gate2(p1) -> W1(p0, wo dup)
  // W2 completes while W1 is still queued (gate2 holds the worker); a
  // read-write duplicate submitted then must still find W1 registered
  // and collapse onto it.
  auto server =
      std::move(engine::Server::Create(CachingServerConfig(1)).value());
  // Two *distinct* heavy instances: were they identical, gate2 would
  // collapse onto gate1 instead of occupying the worker.
  const core::Instance heavy1 = SmallInstance(1, 220, 220);
  const core::Instance heavy2 = SmallInstance(2, 220, 220);
  const core::Instance dup = SmallInstance(44);

  engine::SubmitControls gate1_controls;
  gate1_controls.priority = 10;
  engine::Ticket gate1 = server->Submit(heavy1, gate1_controls).value();

  engine::SubmitControls wo_low;
  wo_low.cache = CacheMode::kWriteOnly;
  wo_low.priority = 0;
  engine::Ticket w1 = server->Submit(dup, wo_low).value();  // registers
  engine::SubmitControls wo_high = wo_low;
  wo_high.priority = 5;
  engine::Ticket w2 = server->Submit(dup, wo_high).value();  // duplicate

  engine::SubmitControls gate2_controls;
  gate2_controls.priority = 1;
  engine::Ticket gate2 = server->Submit(heavy2, gate2_controls).value();

  ASSERT_TRUE(w2.Wait().ok());  // W1 still queued behind gate2
  engine::Ticket rider = server->Submit(dup).value();  // kReadWrite default
  ASSERT_TRUE(rider.Wait().ok());
  ASSERT_TRUE(w1.Wait().ok());
  ASSERT_TRUE(gate1.Wait().ok());
  ASSERT_TRUE(gate2.Wait().ok());
  EXPECT_EQ(engine::ResultFingerprint(rider.Wait()),
            engine::ResultFingerprint(w1.Wait()));

  server->Shutdown(engine::ShutdownMode::kDrain);
  EXPECT_EQ(server->Stats().collapsed, 1);  // the rider rode W1
}

TEST(ServerCacheTest, EvictionCounterSurfacesCapacityPressure) {
  ServerConfig config = CachingServerConfig(1);
  config.cache_result_entries = 2;
  config.cache_graph_entries = 1;
  auto server = std::move(engine::Server::Create(std::move(config)).value());
  // 12 distinct instances through a cache of (at most) 4 shards x 1 entry
  // per tier: the pigeonhole guarantees evictions on both tiers.
  for (uint64_t seed = 0; seed < 12; ++seed) {
    engine::Ticket ticket = server->Submit(SmallInstance(seed)).value();
    ASSERT_TRUE(ticket.Wait().ok());
  }
  server->Shutdown(engine::ShutdownMode::kDrain);
  EXPECT_GT(server->Stats().cache_evictions, 0);
  EXPECT_GT(server->GetCacheStats().result_evictions, 0);
  EXPECT_GT(server->GetCacheStats().graph_evictions, 0);
}

// The acceptance criterion at the server layer: with a repetitive schedule
// (3 distinct instances, 24 submissions from 3 real submitter threads),
// per-ticket results under caching are bit-identical to the cache-off
// baseline at 1, 2, and 8 dispatch workers.
TEST(ServerCacheTest, CacheHitsBitIdenticalAcross1_2_8Workers) {
  test::StressScript script;
  script.arrivals.resize(3);
  for (int s = 0; s < 3; ++s) {
    for (int a = 0; a < 8; ++a) {
      test::StressArrival arrival;
      arrival.instance_seed = 100 + static_cast<uint64_t>(a % 3);
      arrival.num_tasks = 10;
      arrival.num_workers = 20;
      arrival.priority = a % 2;
      script.arrivals[s].push_back(arrival);
    }
  }

  ServerConfig cold_config = CachingServerConfig(1);
  cold_config.cache_mode = CacheMode::kOff;
  cold_config.cache_result_entries = 0;  // fully disable, incl. collapse
  cold_config.cache_graph_entries = 0;
  const std::vector<std::string> baseline =
      test::ReplayScript(script, cold_config, 1);

  for (int workers : {1, 2, 8}) {
    SCOPED_TRACE(workers);
    EXPECT_EQ(test::ReplayScript(script, CachingServerConfig(workers),
                                 workers),
              baseline);
  }
}

}  // namespace
}  // namespace rdbsc
