#include <algorithm>
#include <vector>

#include "core/divide_conquer.h"
#include "core/greedy.h"
#include "core/sampling.h"
#include "core/worker_greedy.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace rdbsc::core {
namespace {

using test::ExpectFeasible;
using test::SmallInstance;

// ---------- GREEDY ----------

TEST(GreedyTest, AssignsEveryConnectedWorker) {
  Instance instance = SmallInstance(1);
  CandidateGraph graph = CandidateGraph::Build(instance);
  GreedySolver solver;
  SolveResult result = solver.Solve(instance, graph).value();
  ExpectFeasible(instance, graph, result.assignment);
  for (WorkerId j = 0; j < instance.num_workers(); ++j) {
    if (graph.Degree(j) > 0) {
      EXPECT_NE(result.assignment.TaskOf(j), kNoTask)
          << "connected worker " << j << " left unassigned";
    } else {
      EXPECT_EQ(result.assignment.TaskOf(j), kNoTask);
    }
  }
}

TEST(GreedyTest, ObjectivesMatchReevaluation) {
  Instance instance = SmallInstance(2);
  CandidateGraph graph = CandidateGraph::Build(instance);
  GreedySolver solver;
  SolveResult result = solver.Solve(instance, graph).value();
  ObjectiveValue check = EvaluateAssignment(instance, result.assignment);
  EXPECT_NEAR(result.objectives.min_reliability, check.min_reliability, 1e-9);
  EXPECT_NEAR(result.objectives.total_std, check.total_std, 1e-9);
}

TEST(GreedyTest, DeterministicAcrossRuns) {
  Instance instance = SmallInstance(3);
  CandidateGraph graph = CandidateGraph::Build(instance);
  GreedySolver a, b;
  SolveResult ra = a.Solve(instance, graph).value();
  SolveResult rb = b.Solve(instance, graph).value();
  for (WorkerId j = 0; j < instance.num_workers(); ++j) {
    EXPECT_EQ(ra.assignment.TaskOf(j), rb.assignment.TaskOf(j));
  }
}

// Property: the Lemma 4.3 pruning must not change greedy's answer, only
// skip exact evaluations.
class GreedyPruningTest : public ::testing::TestWithParam<int> {};

TEST_P(GreedyPruningTest, PruningPreservesResult) {
  Instance instance = SmallInstance(GetParam(), /*num_tasks=*/8,
                                    /*num_workers=*/24);
  CandidateGraph graph = CandidateGraph::Build(instance);
  SolverOptions with, without;
  with.use_pruning = true;
  with.greedy_increment = SolverOptions::GreedyIncrement::kExact;
  without = with;
  without.use_pruning = false;
  GreedySolver pruned(with), plain(without);
  SolveResult rp = pruned.Solve(instance, graph).value();
  SolveResult rn = plain.Solve(instance, graph).value();
  EXPECT_NEAR(rp.objectives.total_std, rn.objectives.total_std, 1e-9);
  EXPECT_NEAR(rp.objectives.min_reliability, rn.objectives.min_reliability,
              1e-9);
  EXPECT_LE(rp.stats.exact_std_evals, rn.stats.exact_std_evals);
}

TEST_P(GreedyPruningTest, ExactIncrementsAtLeastAsGoodAsBounds) {
  // The Section 4.3 bound estimates trade diversity for speed; the exact
  // variant must never do worse on the instances it fully re-optimizes.
  Instance instance = SmallInstance(GetParam() + 200, /*num_tasks=*/8,
                                    /*num_workers=*/32);
  CandidateGraph graph = CandidateGraph::Build(instance);
  SolverOptions bounds, exact;
  bounds.greedy_increment = SolverOptions::GreedyIncrement::kBounds;
  exact.greedy_increment = SolverOptions::GreedyIncrement::kExact;
  double std_bounds =
      GreedySolver(bounds).Solve(instance, graph).value().objectives.total_std;
  double std_exact =
      GreedySolver(exact).Solve(instance, graph).value().objectives.total_std;
  // Not a theorem pointwise, but holds with margin on these instances.
  EXPECT_GE(std_exact, std_bounds * 0.9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GreedyPruningTest,
                         ::testing::Values(11, 12, 13, 14, 15, 16));

TEST(GreedyTest, EmptyInstance) {
  Instance instance({}, {});
  CandidateGraph graph = CandidateGraph::Build(instance);
  GreedySolver solver;
  SolveResult result = solver.Solve(instance, graph).value();
  EXPECT_EQ(result.assignment.NumAssigned(), 0);
  EXPECT_DOUBLE_EQ(result.objectives.total_std, 0.0);
}

TEST(GreedyTest, NoValidPairs) {
  // One far-away slow worker that cannot reach the task in time.
  Task t = test::MakeTask(0.5, 0.0, 0.01);
  t.location = {0.0, 0.0};
  Worker w;
  w.location = {1.0, 1.0};
  w.velocity = 0.01;
  Instance instance({t}, {w});
  CandidateGraph graph = CandidateGraph::Build(instance);
  EXPECT_EQ(graph.NumEdges(), 0);
  GreedySolver solver;
  SolveResult result = solver.Solve(instance, graph).value();
  EXPECT_EQ(result.assignment.NumAssigned(), 0);
}

// ---------- Worker-order GREEDY (Section 8.1 variant) ----------

TEST(WorkerGreedyTest, FeasibleAndAssignsConnectedWorkers) {
  Instance instance = SmallInstance(41);
  CandidateGraph graph = CandidateGraph::Build(instance);
  WorkerGreedySolver solver;
  SolveResult result = solver.Solve(instance, graph).value();
  ExpectFeasible(instance, graph, result.assignment);
  for (WorkerId j = 0; j < instance.num_workers(); ++j) {
    EXPECT_EQ(result.assignment.TaskOf(j) != kNoTask, graph.Degree(j) > 0);
  }
}

TEST(WorkerGreedyTest, DeterministicAndConsistentObjectives) {
  Instance instance = SmallInstance(42);
  CandidateGraph graph = CandidateGraph::Build(instance);
  WorkerGreedySolver a, b;
  SolveResult ra = a.Solve(instance, graph).value();
  SolveResult rb = b.Solve(instance, graph).value();
  for (WorkerId j = 0; j < instance.num_workers(); ++j) {
    EXPECT_EQ(ra.assignment.TaskOf(j), rb.assignment.TaskOf(j));
  }
  ObjectiveValue check = EvaluateAssignment(instance, ra.assignment);
  EXPECT_NEAR(ra.objectives.total_std, check.total_std, 1e-9);
}

// ---------- SAMPLING ----------

TEST(SamplingTest, FeasibleAndDeterministic) {
  Instance instance = SmallInstance(4);
  CandidateGraph graph = CandidateGraph::Build(instance);
  SolverOptions options;
  options.seed = 99;
  SamplingSolver a(options), b(options);
  SolveResult ra = a.Solve(instance, graph).value();
  SolveResult rb = b.Solve(instance, graph).value();
  ExpectFeasible(instance, graph, ra.assignment);
  for (WorkerId j = 0; j < instance.num_workers(); ++j) {
    EXPECT_EQ(ra.assignment.TaskOf(j), rb.assignment.TaskOf(j));
  }
}

TEST(SamplingTest, AssignsEveryConnectedWorker) {
  Instance instance = SmallInstance(5);
  CandidateGraph graph = CandidateGraph::Build(instance);
  SamplingSolver solver;
  SolveResult result = solver.Solve(instance, graph).value();
  for (WorkerId j = 0; j < instance.num_workers(); ++j) {
    EXPECT_EQ(result.assignment.TaskOf(j) != kNoTask, graph.Degree(j) > 0);
  }
}

TEST(SamplingTest, BestSampleDominatesOrTiesSingleSample) {
  Instance instance = SmallInstance(6);
  CandidateGraph graph = CandidateGraph::Build(instance);
  SolverOptions one_options;
  one_options.fixed_sample_size = 1;
  one_options.min_sample_size = 1;
  SolverOptions many_options;
  many_options.fixed_sample_size = 64;
  many_options.seed = one_options.seed;
  SamplingSolver one(one_options), many(many_options);
  ObjectiveValue v1 = one.Solve(instance, graph).value().objectives;
  ObjectiveValue v64 = many.Solve(instance, graph).value().objectives;
  // The 64-sample best is the single sample or something ranked better;
  // it can never be dominated by the first sample.
  EXPECT_FALSE(Dominates(v1, v64));
}

TEST(SamplingTest, ReportsSampleSize) {
  Instance instance = SmallInstance(7);
  CandidateGraph graph = CandidateGraph::Build(instance);
  SolverOptions options;
  options.fixed_sample_size = 17;
  SamplingSolver solver(options);
  SolveResult result = solver.Solve(instance, graph).value();
  EXPECT_EQ(result.stats.sample_size, 17);
  EXPECT_EQ(solver.EffectiveSampleSize(graph), 17);
}

TEST(SamplingTest, MultiplierScalesSampleSize) {
  Instance instance = SmallInstance(8);
  CandidateGraph graph = CandidateGraph::Build(instance);
  SolverOptions base;
  base.fixed_sample_size = 10;
  SolverOptions boosted = base;
  boosted.sample_multiplier = 10;
  EXPECT_EQ(SamplingSolver(base).EffectiveSampleSize(graph), 10);
  EXPECT_EQ(SamplingSolver(boosted).EffectiveSampleSize(graph), 100);
}

// ---------- D&C and G-TRUTH ----------

class DivideConquerFeasibilityTest : public ::testing::TestWithParam<int> {};

TEST_P(DivideConquerFeasibilityTest, FeasibleOnRandomInstances) {
  Instance instance = SmallInstance(GetParam(), /*num_tasks=*/20,
                                    /*num_workers=*/60);
  CandidateGraph graph = CandidateGraph::Build(instance);
  SolverOptions options;
  options.gamma = 6;  // force several partition levels
  DivideConquerSolver solver(options);
  SolveResult result = solver.Solve(instance, graph).value();
  ExpectFeasible(instance, graph, result.assignment);
  // Every connected worker ends up with exactly one task after the merge.
  for (WorkerId j = 0; j < instance.num_workers(); ++j) {
    EXPECT_EQ(result.assignment.TaskOf(j) != kNoTask, graph.Degree(j) > 0)
        << "worker " << j;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DivideConquerFeasibilityTest,
                         ::testing::Values(21, 22, 23, 24, 25, 26, 27, 28));

TEST(DivideConquerTest, LeafOnlyEqualsEmbeddedSolver) {
  Instance instance = SmallInstance(30);
  CandidateGraph graph = CandidateGraph::Build(instance);
  SolverOptions options;
  options.gamma = 1'000'000;  // never partition
  DivideConquerSolver dc(options);
  SolveResult result = dc.Solve(instance, graph).value();
  ExpectFeasible(instance, graph, result.assignment);
}

TEST(DivideConquerTest, GreedyLeavesWork) {
  Instance instance = SmallInstance(31, 16, 40);
  CandidateGraph graph = CandidateGraph::Build(instance);
  SolverOptions options;
  options.gamma = 5;
  options.leaf_use_greedy = true;
  DivideConquerSolver solver(options);
  SolveResult result = solver.Solve(instance, graph).value();
  ExpectFeasible(instance, graph, result.assignment);
}

TEST(DivideConquerTest, ObjectivesMatchReevaluation) {
  Instance instance = SmallInstance(32, 20, 50);
  CandidateGraph graph = CandidateGraph::Build(instance);
  SolverOptions options;
  options.gamma = 6;
  DivideConquerSolver solver(options);
  SolveResult result = solver.Solve(instance, graph).value();
  ObjectiveValue check = EvaluateAssignment(instance, result.assignment);
  EXPECT_NEAR(result.objectives.total_std, check.total_std, 1e-9);
  EXPECT_NEAR(result.objectives.min_reliability, check.min_reliability,
              1e-9);
}

TEST(GroundTruthTest, UsesTenfoldSamples) {
  Instance instance = SmallInstance(33);
  CandidateGraph graph = CandidateGraph::Build(instance);
  GroundTruthSolver solver;
  EXPECT_EQ(solver.name(), "G-TRUTH");
  SolveResult result = solver.Solve(instance, graph).value();
  ExpectFeasible(instance, graph, result.assignment);
}

// Sanity shape check on small instances: every approximation tracks
// G-TRUTH within a generous factor (the paper's Figs 11-15 claim SAMPLING
// and D&C sit close to G-TRUTH; the tight trend comparisons live in the
// bench harness where instances are large enough to be stable).
TEST(SolverComparisonTest, ApproximationsTrackGroundTruth) {
  double greedy_total = 0.0, sampling_total = 0.0, dc_total = 0.0,
         gtruth_total = 0.0;
  for (int seed = 1; seed <= 6; ++seed) {
    Instance instance = SmallInstance(seed, 10, 40);
    CandidateGraph graph = CandidateGraph::Build(instance);
    GreedySolver greedy;
    SamplingSolver sampling;
    SolverOptions dc_options;
    dc_options.gamma = 4;
    DivideConquerSolver dc(dc_options);
    GroundTruthSolver gtruth(dc_options);
    greedy_total += greedy.Solve(instance, graph).value().objectives.total_std;
    sampling_total += sampling.Solve(instance, graph).value().objectives.total_std;
    dc_total += dc.Solve(instance, graph).value().objectives.total_std;
    gtruth_total += gtruth.Solve(instance, graph).value().objectives.total_std;
  }
  EXPECT_GT(gtruth_total, 0.0);
  EXPECT_GT(sampling_total, 0.6 * gtruth_total);
  EXPECT_GT(dc_total, 0.6 * gtruth_total);
  EXPECT_GT(greedy_total, 0.6 * gtruth_total);
}

}  // namespace
}  // namespace rdbsc::core
