#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <future>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "gtest/gtest.h"
#include "util/executor.h"

namespace rdbsc::util {
namespace {

TEST(ThreadPoolTest, SubmitReturnsFutureWithResult) {
  ThreadPool pool(2);
  std::future<int> forty_two = pool.Submit([] { return 42; });
  std::future<std::string> text =
      pool.Submit([] { return std::string("done"); });
  EXPECT_EQ(forty_two.get(), 42);
  EXPECT_EQ(text.get(), "done");
}

TEST(ThreadPoolTest, SubmitRunsManyTasksToCompletion) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 200; ++i) {
    futures.push_back(pool.Submit([&count] {
      count.fetch_add(1, std::memory_order_relaxed);
    }));
  }
  for (auto& future : futures) future.get();
  EXPECT_EQ(count.load(), 200);
}

TEST(ThreadPoolTest, ParallelForVisitsEveryIndexExactlyOnce) {
  for (int threads : {1, 2, 8}) {
    ThreadPool pool(threads);
    constexpr int64_t kN = 10'000;
    std::vector<std::atomic<int>> visits(kN);
    pool.ParallelFor(kN, [&visits](int64_t i) {
      visits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (int64_t i = 0; i < kN; ++i) {
      ASSERT_EQ(visits[i].load(), 1) << "index " << i;
    }
  }
}

TEST(ThreadPoolTest, ShardedForPartitionsTheRange) {
  ThreadPool pool(3);
  std::mutex mu;
  std::vector<std::pair<int64_t, int64_t>> ranges;
  pool.ShardedFor(100, [&](int /*shard*/, int64_t begin, int64_t end) {
    std::lock_guard<std::mutex> lock(mu);
    ranges.emplace_back(begin, end);
  });
  std::sort(ranges.begin(), ranges.end());
  ASSERT_FALSE(ranges.empty());
  ASSERT_LE(static_cast<int>(ranges.size()), pool.width());
  EXPECT_EQ(ranges.front().first, 0);
  EXPECT_EQ(ranges.back().second, 100);
  for (size_t r = 1; r < ranges.size(); ++r) {
    EXPECT_EQ(ranges[r].first, ranges[r - 1].second);  // contiguous
  }
}

TEST(ThreadPoolTest, ShardedForOnEmptyAndTinyRanges) {
  ThreadPool pool(4);
  int calls = 0;
  pool.ShardedFor(0, [&](int, int64_t, int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  // n smaller than width: one shard per index, never an empty shard.
  std::atomic<int> sum{0};
  pool.ShardedFor(2, [&](int, int64_t begin, int64_t end) {
    EXPECT_LT(begin, end);
    sum.fetch_add(static_cast<int>(end - begin));
  });
  EXPECT_EQ(sum.load(), 2);
}

TEST(ThreadPoolTest, NestedShardedForDoesNotDeadlock) {
  // A pooled task that itself shards work: with every worker busy, the
  // inner call must make progress on the calling thread alone.
  ThreadPool pool(2);
  std::atomic<int64_t> total{0};
  std::vector<std::future<void>> outer;
  for (int task = 0; task < 8; ++task) {
    outer.push_back(pool.Submit([&pool, &total] {
      pool.ShardedFor(50, [&total](int, int64_t begin, int64_t end) {
        total.fetch_add(end - begin, std::memory_order_relaxed);
      });
    }));
  }
  for (auto& future : outer) future.get();
  EXPECT_EQ(total.load(), 8 * 50);
}

TEST(ExecutorTest, SerialExecutorRunsInline) {
  SerialExecutor serial;
  EXPECT_EQ(serial.width(), 1);
  std::vector<int64_t> order;
  serial.ParallelFor(5, [&order](int64_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<int64_t>{0, 1, 2, 3, 4}));
}

TEST(ExecutorTest, OrSerialResolvesNull) {
  EXPECT_EQ(&OrSerial(nullptr), &SerialExec());
  ThreadPool pool(2);
  EXPECT_EQ(&OrSerial(&pool), &pool);
}

}  // namespace
}  // namespace rdbsc::util
