// Workload lint: a non-gtest ctest (label `lint`) that walks the
// checked-in workloads/ directory and verifies every scenario at the
// bottom of the repo's quality funnel -- each top-level *.wl must parse
// AND compile (so a bad edit fails CI before any replay runs), and every
// fragments/*.wl library must at least parse on its own. Prints one line
// per file; exits non-zero listing every failure.

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "wl/compile.h"
#include "wl/spec.h"

#ifndef RDBSC_WORKLOADS_DIR
#define RDBSC_WORKLOADS_DIR "workloads"
#endif

namespace fs = std::filesystem;

int main() {
  const fs::path root = RDBSC_WORKLOADS_DIR;
  if (!fs::is_directory(root)) {
    std::fprintf(stderr, "workload_lint: no such directory %s\n",
                 root.string().c_str());
    return 1;
  }

  std::vector<fs::path> files;
  for (const auto& entry : fs::recursive_directory_iterator(root)) {
    if (entry.is_regular_file() && entry.path().extension() == ".wl") {
      files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());
  if (files.empty()) {
    std::fprintf(stderr, "workload_lint: no .wl files under %s\n",
                 root.string().c_str());
    return 1;
  }

  std::vector<std::string> failures;
  int scenarios = 0;
  for (const fs::path& path : files) {
    const bool fragment = path.parent_path().filename() == "fragments";
    rdbsc::util::StatusOr<rdbsc::wl::WorkloadSpec> spec =
        rdbsc::wl::ParseWorkloadFile(path.string());
    if (!spec.ok()) {
      failures.push_back(spec.status().message());
      std::printf("FAIL  %s (parse)\n", path.string().c_str());
      continue;
    }
    if (fragment) {
      // Fragment libraries carry templates/settings only; they are not
      // required to compile stand-alone (usually they have no phases).
      std::printf("ok    %s (fragment, parses)\n", path.string().c_str());
      continue;
    }
    rdbsc::util::StatusOr<rdbsc::wl::CompiledWorkload> compiled =
        rdbsc::wl::CompileWorkload(spec.value());
    if (!compiled.ok()) {
      failures.push_back(path.string() + ": " + compiled.status().message());
      std::printf("FAIL  %s (compile)\n", path.string().c_str());
      continue;
    }
    ++scenarios;
    std::printf("ok    %s (%lld ops, %zu phases)\n", path.string().c_str(),
                static_cast<long long>(compiled.value().total_ops),
                compiled.value().phases.size());
  }

  if (!failures.empty()) {
    std::fprintf(stderr, "workload_lint: %zu failure(s)\n", failures.size());
    for (const std::string& failure : failures) {
      std::fprintf(stderr, "  %s\n", failure.c_str());
    }
    return 1;
  }
  if (scenarios == 0) {
    std::fprintf(stderr,
                 "workload_lint: no top-level scenarios compiled\n");
    return 1;
  }
  std::printf("workload_lint: %zu file(s) clean, %d scenario(s) compile\n",
              files.size(), scenarios);
  return 0;
}
