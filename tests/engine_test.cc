#include "engine/engine.h"

#include <string>
#include <vector>

#include "core/registry.h"
#include "gtest/gtest.h"
#include "test_util.h"
#include "util/deadline.h"

namespace rdbsc {
namespace {

using test::SmallInstance;

TEST(EngineTest, CreateRejectsUnknownSolver) {
  EngineConfig config;
  config.solver_name = "definitely-not-registered";
  util::StatusOr<Engine> engine = Engine::Create(config);
  ASSERT_FALSE(engine.ok());
  EXPECT_EQ(engine.status().code(), util::StatusCode::kNotFound);
}

TEST(EngineTest, DefaultConstructedEngineIsInert) {
  Engine engine;
  core::Instance instance = SmallInstance(1);
  util::StatusOr<EngineResult> run = engine.Run(instance);
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), util::StatusCode::kFailedPrecondition);
}

TEST(EngineTest, ValidatesInstancesBeforeSolving) {
  core::Task task = test::MakeTask();
  core::Worker bad;
  bad.location = {0.5, 0.5};
  bad.velocity = -1.0;  // invalid: Instance::Validate must reject this
  core::Instance instance({task}, {bad});

  Engine engine = Engine::Create("greedy").value();
  util::StatusOr<EngineResult> run = engine.Run(instance);
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), util::StatusCode::kInvalidArgument);
}

// The two graph-construction paths must agree edge-for-edge, so forcing
// either one through the facade yields the same assignment for one seed.
TEST(EngineTest, GridAndBruteForceGraphsProduceTheSameSolve) {
  core::Instance instance = SmallInstance(9, 30, 60);

  EngineConfig brute;
  brute.solver_name = "greedy";
  brute.graph_strategy = GraphStrategy::kBruteForce;
  EngineConfig grid = brute;
  grid.graph_strategy = GraphStrategy::kGridIndex;

  EngineResult via_brute =
      Engine::Create(brute).value().Run(instance).value();
  EngineResult via_grid =
      Engine::Create(grid).value().Run(instance).value();

  EXPECT_FALSE(via_brute.plan.used_grid_index);
  EXPECT_TRUE(via_grid.plan.used_grid_index);
  EXPECT_GT(via_grid.plan.eta, 0.0);
  EXPECT_EQ(via_brute.plan.edges, via_grid.plan.edges);
  for (core::WorkerId j = 0; j < instance.num_workers(); ++j) {
    EXPECT_EQ(via_brute.solve.assignment.TaskOf(j),
              via_grid.solve.assignment.TaskOf(j))
        << "worker " << j;
  }
}

TEST(EngineTest, AutoStrategyPicksAPathAndSolves) {
  core::Instance instance = SmallInstance(10, 20, 40);
  Engine engine = Engine::Create("dc").value();
  EngineResult result = engine.Run(instance).value();
  EXPECT_GE(result.plan.edges, 0);
  EXPECT_GE(result.solve.objectives.total_std, 0.0);
}

// Acceptance criterion: a budget-exhausted solve returns a non-OK status
// (kDeadlineExceeded) with partial stats instead of hanging.
TEST(EngineTest, TinyBudgetReturnsDeadlineExceededWithPartialStats) {
  core::Instance instance = SmallInstance(11, 20, 60);
  for (const char* name : {"greedy", "worker-greedy", "sampling", "dc",
                           "gtruth"}) {
    EngineConfig config;
    config.solver_name = name;
    Engine engine = Engine::Create(config).value();
    core::SolveStats partial;
    RunControls controls;
    controls.budget_seconds = 1e-12;
    controls.partial_stats = &partial;
    util::StatusOr<EngineResult> run = engine.Run(instance, controls);
    ASSERT_FALSE(run.ok()) << name;
    EXPECT_EQ(run.status().code(), util::StatusCode::kDeadlineExceeded)
        << name << ": " << run.status().ToString();
    EXPECT_TRUE(partial.budget_exhausted) << name;
  }
}

TEST(EngineTest, ExactSolverHonorsTinyBudget) {
  // Small enough to be under the enumeration cap, so the failure comes
  // from the budget (not the cap check).
  core::Instance instance = SmallInstance(12, 4, 8);
  EngineConfig config;
  config.solver_name = "exact";
  config.budget_seconds = 1e-12;  // engine-level default budget
  Engine engine = Engine::Create(config).value();
  util::StatusOr<EngineResult> run = engine.Run(instance);
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), util::StatusCode::kDeadlineExceeded);
}

TEST(EngineTest, CancelTokenStopsTheSolve) {
  core::Instance instance = SmallInstance(13, 20, 60);
  Engine engine = Engine::Create("sampling").value();
  util::CancelToken cancel;
  cancel.Cancel();  // already cancelled: the solve must not run
  RunControls controls;
  controls.cancel = &cancel;
  util::StatusOr<EngineResult> run = engine.Run(instance, controls);
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), util::StatusCode::kCancelled);
}

TEST(EngineTest, PerRunBudgetOverridesConfigDefault) {
  core::Instance instance = SmallInstance(14, 16, 40);
  EngineConfig config;
  config.solver_name = "sampling";
  config.budget_seconds = 1e-12;  // default would fail...
  Engine engine = Engine::Create(config).value();
  RunControls controls;
  controls.budget_seconds = 0.0;  // ...but 0 means unlimited per-run
  util::StatusOr<EngineResult> run = engine.Run(instance, controls);
  EXPECT_TRUE(run.ok()) << run.status().ToString();
}

TEST(EngineTest, SolveOnReusesACallerGraph) {
  core::Instance instance = SmallInstance(15, 12, 30);
  Engine engine = Engine::Create("greedy").value();
  GraphPlan plan;
  core::CandidateGraph graph = engine.BuildGraph(instance, &plan).value();
  EXPECT_EQ(plan.edges, graph.NumEdges());
  util::StatusOr<core::SolveResult> solve = engine.SolveOn(instance, graph);
  ASSERT_TRUE(solve.ok());
  test::ExpectFeasible(instance, graph, solve.value().assignment);
}

// Satellite acceptance: the build phase itself now has interruption
// points, so a deadline that trips during (or before) graph construction
// surfaces as kDeadlineExceeded instead of the O(m*n) scan running to
// completion. The instance is large enough that a 50-microsecond budget
// cannot cover the build on any machine.
TEST(EngineTest, MidBuildDeadlineReturnsDeadlineExceeded) {
  core::Instance instance = SmallInstance(16, 1'500, 1'500);
  EngineConfig config;
  config.solver_name = "greedy";
  config.graph_strategy = GraphStrategy::kBruteForce;
  Engine engine = Engine::Create(config).value();
  core::SolveStats partial;
  RunControls controls;
  controls.budget_seconds = 50e-6;
  controls.partial_stats = &partial;
  util::StatusOr<EngineResult> run = engine.Run(instance, controls);
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), util::StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(partial.budget_exhausted);
}

TEST(EngineTest, BuildGraphReportsTrippedDeadline) {
  core::Instance instance = SmallInstance(17, 30, 30);
  Engine engine = Engine::Create("greedy").value();
  util::CancelToken cancel;
  cancel.Cancel();
  util::Deadline tripped(0.0, &cancel);
  for (GraphStrategy strategy :
       {GraphStrategy::kBruteForce, GraphStrategy::kGridIndex}) {
    EngineConfig config;
    config.solver_name = "greedy";
    config.graph_strategy = strategy;
    Engine strategic = Engine::Create(config).value();
    util::StatusOr<core::CandidateGraph> graph =
        strategic.BuildGraph(instance, nullptr, tripped);
    ASSERT_FALSE(graph.ok());
    EXPECT_EQ(graph.status().code(), util::StatusCode::kCancelled);
  }
}

TEST(EngineTest, RunBatchMatchesIndividualRuns) {
  std::vector<core::Instance> instances;
  for (uint64_t seed : {21, 22, 23, 24, 25}) {
    instances.push_back(SmallInstance(seed, 15, 25));
  }
  for (int num_threads : {0, 4}) {
    EngineConfig config;
    config.solver_name = "dc";
    config.num_threads = num_threads;
    Engine engine = Engine::Create(config).value();
    std::vector<util::StatusOr<EngineResult>> batch =
        engine.RunBatch(instances);
    ASSERT_EQ(batch.size(), instances.size());

    Engine serial = Engine::Create("dc").value();
    for (size_t i = 0; i < instances.size(); ++i) {
      ASSERT_TRUE(batch[i].ok())
          << "threads " << num_threads << ": " << batch[i].status().ToString();
      EngineResult expected = serial.Run(instances[i]).value();
      EXPECT_EQ(batch[i].value().plan.edges, expected.plan.edges);
      EXPECT_DOUBLE_EQ(batch[i].value().solve.objectives.total_std,
                       expected.solve.objectives.total_std);
      EXPECT_DOUBLE_EQ(batch[i].value().solve.objectives.min_reliability,
                       expected.solve.objectives.min_reliability);
      for (core::WorkerId j = 0; j < instances[i].num_workers(); ++j) {
        EXPECT_EQ(batch[i].value().solve.assignment.TaskOf(j),
                  expected.solve.assignment.TaskOf(j));
      }
    }
  }
}

TEST(EngineTest, RunBatchSharesOneCancelToken) {
  std::vector<core::Instance> instances;
  for (uint64_t seed : {31, 32, 33}) {
    instances.push_back(SmallInstance(seed, 10, 20));
  }
  EngineConfig config;
  config.solver_name = "sampling";
  config.num_threads = 2;
  Engine engine = Engine::Create(config).value();
  util::CancelToken cancel;
  cancel.Cancel();  // the whole batch is refused by the shared token
  RunControls controls;
  controls.cancel = &cancel;
  std::vector<util::StatusOr<EngineResult>> batch =
      engine.RunBatch(instances, controls);
  ASSERT_EQ(batch.size(), instances.size());
  for (const auto& result : batch) {
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), util::StatusCode::kCancelled);
  }
}

TEST(EngineTest, RunBatchOnEmptySpanIsEmpty) {
  Engine engine = Engine::Create("greedy").value();
  EXPECT_TRUE(engine.RunBatch({}).empty());
}

}  // namespace
}  // namespace rdbsc
