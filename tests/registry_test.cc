#include "core/registry.h"

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "test_util.h"

namespace rdbsc::core {
namespace {

using test::ExpectFeasible;
using test::SmallInstance;

TEST(SolverRegistryTest, GlobalHasAllSixBuiltins) {
  std::vector<std::string> names = SolverRegistry::Global().Names();
  const std::vector<std::string> expected = {
      "dc", "exact", "greedy", "gtruth", "sampling", "worker-greedy"};
  for (const std::string& name : expected) {
    EXPECT_NE(std::find(names.begin(), names.end(), name), names.end())
        << "missing builtin solver " << name;
  }
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

// Every registered name must round-trip to a working solver: create it,
// solve a tiny instance, get a feasible assignment. Tiny sizes keep even
// the EXACT enumeration in microseconds.
TEST(SolverRegistryTest, EveryNameRoundTripsToAWorkingSolver) {
  Instance instance = SmallInstance(3, /*num_tasks=*/4, /*num_workers=*/7);
  CandidateGraph graph = CandidateGraph::Build(instance);
  for (const std::string& name : SolverRegistry::Global().Names()) {
    util::StatusOr<std::unique_ptr<Solver>> solver =
        SolverRegistry::Global().Create(name);
    ASSERT_TRUE(solver.ok()) << name;
    ASSERT_NE(solver.value(), nullptr) << name;
    EXPECT_FALSE(solver.value()->name().empty()) << name;
    util::StatusOr<SolveResult> result =
        solver.value()->Solve(instance, graph);
    ASSERT_TRUE(result.ok())
        << name << ": " << result.status().ToString();
    ExpectFeasible(instance, graph, result.value().assignment);
  }
}

TEST(SolverRegistryTest, UnknownNameIsNotFoundAndListsAlternatives) {
  util::StatusOr<std::unique_ptr<Solver>> created =
      SolverRegistry::Global().Create("no-such-solver");
  ASSERT_FALSE(created.ok());
  EXPECT_EQ(created.status().code(), util::StatusCode::kNotFound);
  // The error message doubles as discovery for CLI users.
  EXPECT_NE(created.status().message().find("greedy"), std::string::npos);
  EXPECT_NE(created.status().message().find("dc"), std::string::npos);
}

TEST(SolverRegistryTest, OptionsReachTheCreatedSolver) {
  Instance instance = SmallInstance(4);
  CandidateGraph graph = CandidateGraph::Build(instance);
  SolverOptions options;
  options.fixed_sample_size = 17;
  auto solver = SolverRegistry::Global().Create("sampling", options);
  ASSERT_TRUE(solver.ok());
  util::StatusOr<SolveResult> result =
      solver.value()->Solve(instance, graph);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().stats.sample_size, 17);
}

TEST(SolverRegistryTest, DuplicateRegistrationFails) {
  util::Status status = SolverRegistry::Global().Register(
      "greedy",
      [](const SolverOptions&) { return std::unique_ptr<Solver>(); });
  EXPECT_EQ(status.code(), util::StatusCode::kAlreadyExists);
}

TEST(SolverRegistryTest, ApplicationsCanRegisterCustomSolvers) {
  SolverRegistry registry;  // private registry, not the global one
  EXPECT_FALSE(registry.Contains("custom"));
  ASSERT_TRUE(registry
                  .Register("custom",
                            [](const SolverOptions& options) {
                              return SolverRegistry::Global()
                                  .Create("greedy", options)
                                  .value();
                            })
                  .ok());
  EXPECT_TRUE(registry.Contains("custom"));
  Instance instance = SmallInstance(5);
  CandidateGraph graph = CandidateGraph::Build(instance);
  auto solver = registry.Create("custom");
  ASSERT_TRUE(solver.ok());
  EXPECT_TRUE(solver.value()->Solve(instance, graph).ok());
}

TEST(SolverRegistryTest, RegistrationNeedsNameAndFactory) {
  SolverRegistry registry;
  EXPECT_EQ(registry.Register("", [](const SolverOptions&) {
                      return std::unique_ptr<Solver>();
                    }).code(),
            util::StatusCode::kInvalidArgument);
  EXPECT_EQ(registry.Register("x", nullptr).code(),
            util::StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace rdbsc::core
