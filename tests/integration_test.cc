// End-to-end tests wiring the full stack together: generators -> grid
// index -> candidate graph -> every solver -> objective evaluation, plus
// the platform loop on top of each solver.

#include <memory>
#include <string>
#include <vector>

#include "core/registry.h"
#include "engine/engine.h"
#include "gen/trajectory.h"
#include "gen/workload.h"
#include "gtest/gtest.h"
#include "index/cost_model.h"
#include "index/grid_index.h"
#include "sim/platform.h"
#include "test_util.h"
#include "util/fractal.h"

namespace rdbsc {
namespace {

std::vector<std::unique_ptr<core::Solver>> AllSolvers() {
  std::vector<std::unique_ptr<core::Solver>> solvers;
  core::SolverOptions options;
  options.gamma = 8;
  for (std::string_view name : core::kSection81Approaches) {
    solvers.push_back(
        core::SolverRegistry::Global().Create(name, options).value());
  }
  return solvers;
}

TEST(IntegrationTest, IndexFedSolveEqualsBruteForceFedSolve) {
  core::Instance instance = test::SmallInstance(42, 30, 60);

  // Choose eta with the cost model, using the estimated fractal dimension.
  std::vector<util::KmPoint> points;
  for (int i = 0; i < instance.num_tasks(); ++i) {
    points.push_back({instance.task(i).location.x,
                      instance.task(i).location.y});
  }
  index::CostModelParams cm;
  cm.l_max = 0.5;
  cm.d2 = util::EstimateCorrelationDimension(points);
  cm.num_points = instance.num_tasks();
  double eta = index::OptimalEta(cm);

  index::GridIndex grid = index::GridIndex::Build(instance, eta);
  core::CandidateGraph indexed = core::CandidateGraph::FromEdges(
      instance, grid.RetrieveEdges(instance.num_workers()).value());
  core::CandidateGraph brute = core::CandidateGraph::Build(instance);
  ASSERT_EQ(indexed.NumEdges(), brute.NumEdges());

  for (auto& solver : AllSolvers()) {
    core::SolveResult via_index = solver->Solve(instance, indexed).value();
    core::SolveResult via_brute = solver->Solve(instance, brute).value();
    // Same edges and same seed: identical assignments.
    for (core::WorkerId j = 0; j < instance.num_workers(); ++j) {
      EXPECT_EQ(via_index.assignment.TaskOf(j),
                via_brute.assignment.TaskOf(j))
          << solver->name() << " worker " << j;
    }
  }
}

TEST(IntegrationTest, AllSolversFeasibleOnRealWorkload) {
  gen::RealWorkloadConfig config;
  config.num_tasks = 60;
  config.poi.num_pois = 200;
  config.trajectory.num_taxis = 80;
  core::Instance instance = gen::GenerateRealInstance(config);
  core::CandidateGraph graph = core::CandidateGraph::Build(instance);
  for (auto& solver : AllSolvers()) {
    core::SolveResult result = solver->Solve(instance, graph).value();
    test::ExpectFeasible(instance, graph, result.assignment);
    core::ObjectiveValue check =
        core::EvaluateAssignment(instance, result.assignment);
    EXPECT_NEAR(result.objectives.total_std, check.total_std, 1e-9)
        << solver->name();
  }
}

TEST(IntegrationTest, AllSolversFeasibleOnSkewedWorkload) {
  gen::WorkloadConfig config;
  config.num_tasks = 40;
  config.num_workers = 80;
  config.task_distribution = gen::SpatialDistribution::kSkewed;
  config.worker_distribution = gen::SpatialDistribution::kSkewed;
  config.seed = 5;
  core::Instance instance = gen::GenerateInstance(config);
  core::CandidateGraph graph = core::CandidateGraph::Build(instance);
  for (auto& solver : AllSolvers()) {
    core::SolveResult result = solver->Solve(instance, graph).value();
    test::ExpectFeasible(instance, graph, result.assignment);
  }
}

TEST(IntegrationTest, PlatformRunsWithEverySolver) {
  for (std::string_view name : core::kSection81Approaches) {
    sim::PlatformConfig config;
    config.seed = 31;
    config.solver_name = std::string(name);
    sim::Platform platform(config);
    sim::PlatformResult result = platform.Run().value();
    EXPECT_GT(result.assignments_made, 0) << name;
    EXPECT_GE(result.final_objectives.total_std, 0.0) << name;
  }
}

TEST(IntegrationTest, EngineMatchesManualPipeline) {
  // The facade must produce exactly what the hand-wired pipeline does:
  // same edges and, for a fixed seed, the same assignment.
  core::Instance instance = test::SmallInstance(7, 25, 50);
  EngineConfig config;
  config.solver_name = "greedy";
  Engine engine = Engine::Create(config).value();
  EngineResult via_engine = engine.Run(instance).value();

  core::CandidateGraph graph = core::CandidateGraph::Build(instance);
  EXPECT_EQ(via_engine.plan.edges, graph.NumEdges());
  auto solver = core::SolverRegistry::Global().Create("greedy").value();
  core::SolveResult manual = solver->Solve(instance, graph).value();
  for (core::WorkerId j = 0; j < instance.num_workers(); ++j) {
    EXPECT_EQ(via_engine.solve.assignment.TaskOf(j),
              manual.assignment.TaskOf(j));
  }
}

TEST(IntegrationTest, MoreWorkersRaiseTotalStd) {
  // Paper Fig. 14(b): total_STD grows with n for every approach.
  for (auto& solver : AllSolvers()) {
    gen::WorkloadConfig small_config;
    small_config.num_tasks = 20;
    small_config.num_workers = 30;
    small_config.angle_range = 3.1;
    small_config.seed = 77;
    gen::WorkloadConfig big_config = small_config;
    big_config.num_workers = 120;

    core::Instance small = gen::GenerateInstance(small_config);
    core::Instance big = gen::GenerateInstance(big_config);
    core::CandidateGraph small_graph = core::CandidateGraph::Build(small);
    core::CandidateGraph big_graph = core::CandidateGraph::Build(big);
    double small_std =
        solver->Solve(small, small_graph).value().objectives.total_std;
    double big_std = solver->Solve(big, big_graph).value().objectives.total_std;
    EXPECT_GT(big_std, small_std) << solver->name();
  }
}

}  // namespace
}  // namespace rdbsc
