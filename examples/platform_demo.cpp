// Platform demo: the full dynamic pipeline of Section 8.4 -- the
// gMission-substitute simulator runs the incremental updating strategy
// (Figure 10) with the D&C solver, printing the per-round objectives and
// the final answer statistics.
//
//   $ ./examples/platform_demo [t_interval_minutes]

#include <cstdio>
#include <cstdlib>

#include "sim/platform.h"

using namespace rdbsc;

int main(int argc, char** argv) {
  int minutes = argc > 1 ? std::atoi(argv[1]) : 1;
  if (minutes < 1) minutes = 1;

  sim::PlatformConfig config;
  config.t_interval = minutes / 60.0;
  config.seed = 7;
  config.solver_name = "dc";  // resolved through the solver registry

  sim::Platform platform(config);
  util::StatusOr<sim::PlatformResult> run = platform.Run();
  if (!run.ok()) {
    std::fprintf(stderr, "platform run failed: %s\n",
                 run.status().ToString().c_str());
    return 1;
  }
  const sim::PlatformResult& result = run.value();

  std::printf("platform run: %d sites, %d users, t_interval = %d min\n\n",
              config.num_sites, config.num_workers, minutes);
  std::printf("%8s %6s %10s %10s\n", "t (min)", "new", "min rel",
              "total_STD");
  for (const sim::RoundRecord& round : result.rounds) {
    std::printf("%8.1f %6d %10.4f %10.4f\n", round.time * 60.0,
                round.newly_assigned, round.objectives.min_reliability,
                round.objectives.total_std);
  }
  std::printf(
      "\nfinal: assignments=%d answers=%d min rel=%.4f total_STD=%.4f\n",
      result.assignments_made, result.answers_received,
      result.final_objectives.min_reliability,
      result.final_objectives.total_std);
  std::printf("mean answer accuracy error = %.4f (Section 8.1 measure)\n",
              result.mean_accuracy_error);
  return 0;
}
