// Command-line workload runner: generate (or load) an RDB-SC instance, run
// one of the registered approaches through the Engine facade, print the
// objectives plus structural metrics, and optionally persist everything as
// CSV.
//
//   $ ./examples/run_workload --m=200 --n=300 --dist=skewed --solver=dc
//   $ ./examples/run_workload --tasks=t.csv --workers=w.csv --solver=greedy
//   $ ./examples/run_workload --m=100 --n=100 --out-dir=/tmp/run1
//   $ ./examples/run_workload --server --submitters=8 --threads=4
//   $ ./examples/run_workload --workload=workloads/rush_hour.wl --out=r.json
//   $ ./examples/run_workload --list-solvers
//
// Flags: --m, --n, --dist=uniform|skewed|real, --solver=<registry name>
// (see --list-solvers), --seed, --budget=<seconds> (wall-clock admission
// budget), --graph=auto|brute|grid (candidate-graph construction; auto
// consults the Appendix I cost model), --threads=N (engine thread pool;
// 0 = serial, results identical at every setting), --tasks/--workers
// (CSV input), --out-dir (writes tasks/workers/assignment CSVs).
//
// Caching: --cache=off|ro|wo|rw attaches a SolveCache to the run
// (CacheMode kOff/kReadOnly/kWriteOnly/kReadWrite; default off) and
// --repeat=N solves the same instance N times, so repeated runs after the
// first are answered from the cache in the read-enabled modes -- each
// repetition reports whether it hit and how long it took (bit-identical
// answers either way). In server mode the flags configure the server's
// cache and every submitter submits its instance N times.
//
// Server mode: --server routes the work through the engine::Server
// admission layer instead of a direct Engine::Run -- --submitters=K
// concurrent submitter threads each submit one instance (seeds seed ..
// seed+K-1), --threads sets the server's dispatch workers (min 1), and
// --budget becomes the per-request default budget. Prints one line per
// ticket plus the ServerStats snapshot (including cache hit/miss/collapse
// counters when caching is on). --stats-window=N additionally starts a
// live reporter that rotates the server's latency window every N seconds
// and prints one "window" line per rotation (count + p50/p95/p99/max of
// the requests finished in that window); the final partial window is
// always printed, so at least one line appears even on short runs.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "core/metrics.h"
#include "core/registry.h"
#include "engine/engine.h"
#include "engine/server.h"
#include "engine/solve_cache.h"
#include "gen/trajectory.h"
#include "gen/workload.h"
#include "io/csv.h"
#include "obs/histogram.h"
#include "wl/compile.h"
#include "wl/runner.h"
#include "wl/spec.h"

using namespace rdbsc;

namespace {

const char* FlagValue(int argc, char** argv, const char* name) {
  size_t len = std::strlen(name);
  for (int a = 1; a < argc; ++a) {
    if (std::strncmp(argv[a], name, len) == 0 && argv[a][len] == '=') {
      return argv[a] + len + 1;
    }
  }
  return nullptr;
}

bool HasFlag(int argc, char** argv, const char* name) {
  for (int a = 1; a < argc; ++a) {
    if (std::strcmp(argv[a], name) == 0) return true;
  }
  return false;
}

void PrintSolverNames(std::FILE* out) {
  for (const std::string& name : core::SolverRegistry::Global().Names()) {
    std::fprintf(out, "  %s\n", name.c_str());
  }
}

bool ParseCacheMode(const char* value, engine::CacheMode* mode) {
  std::string text = value == nullptr ? "off" : value;
  if (text == "off") {
    *mode = engine::CacheMode::kOff;
  } else if (text == "ro" || text == "readonly") {
    *mode = engine::CacheMode::kReadOnly;
  } else if (text == "wo" || text == "writeonly") {
    *mode = engine::CacheMode::kWriteOnly;
  } else if (text == "rw" || text == "readwrite") {
    *mode = engine::CacheMode::kReadWrite;
  } else {
    return false;
  }
  return true;
}

}  // namespace

/// `--workload=FILE` mode: parse + compile a declarative .wl scenario
/// (src/wl) and replay it against an engine::Server. `--threads=N` sets
/// the dispatch workers, `--dilation=X` scales open-loop pacing (0 floods;
/// per-ticket results are pacing-independent), `--out=FILE` writes the
/// schema-valid results document.
int RunDeclarativeWorkload(int argc, char** argv, const char* path) {
  const char* flag;
  wl::ReplayOptions options;
  options.num_workers =
      (flag = FlagValue(argc, argv, "--threads")) ? std::atoi(flag) : 2;
  options.time_dilation =
      (flag = FlagValue(argc, argv, "--dilation")) ? std::atof(flag) : 1.0;
  const char* out_path = FlagValue(argc, argv, "--out");

  util::StatusOr<wl::WorkloadSpec> spec = wl::ParseWorkloadFile(path);
  if (!spec.ok()) {
    std::fprintf(stderr, "parse error: %s\n",
                 spec.status().message().c_str());
    return 1;
  }
  util::StatusOr<wl::CompiledWorkload> compiled =
      wl::CompileWorkload(spec.value());
  if (!compiled.ok()) {
    std::fprintf(stderr, "compile error: %s\n",
                 compiled.status().message().c_str());
    return 1;
  }
  std::printf("workload %s: %lld ops over %zu phase(s), %d worker(s)\n",
              compiled.value().name.c_str(),
              static_cast<long long>(compiled.value().total_ops),
              compiled.value().phases.size(), options.num_workers);

  util::StatusOr<wl::ReplayReport> report =
      wl::ReplayWorkload(compiled.value(), options);
  if (!report.ok()) {
    std::fprintf(stderr, "replay error: %s\n",
                 report.status().message().c_str());
    return 1;
  }
  for (const wl::PhaseReport& phase : report.value().phases) {
    std::printf(
        "phase %-16s ops=%-5lld ok=%-5lld cancelled=%-4lld errors=%-4lld "
        "p50=%.4fs p99=%.4fs wall=%.3fs\n",
        phase.name.c_str(), static_cast<long long>(phase.ops),
        static_cast<long long>(phase.ok),
        static_cast<long long>(phase.cancelled),
        static_cast<long long>(phase.errors), phase.latency.p50(),
        phase.latency.p99(), phase.wall_seconds);
  }
  std::printf("fingerprints: %s\n",
              wl::FingerprintDigest(report.value().fingerprints).c_str());
  std::printf("server: submitted=%lld completed=%lld cancelled=%lld "
              "cache_hits=%lld collapsed=%lld generations=%d\n",
              static_cast<long long>(report.value().server.submitted),
              static_cast<long long>(report.value().server.completed),
              static_cast<long long>(report.value().server.cancelled),
              static_cast<long long>(report.value().server.cache_hits),
              static_cast<long long>(report.value().server.collapsed),
              report.value().server_generations);

  if (out_path != nullptr) {
    std::string json =
        wl::ResultsJson(compiled.value(), report.value(), options);
    std::FILE* out = std::fopen(out_path, "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", out_path);
      return 1;
    }
    std::fwrite(json.data(), 1, json.size(), out);
    std::fclose(out);
    std::printf("results: %s\n", out_path);
  }
  return 0;
}

int main(int argc, char** argv) {
  if (HasFlag(argc, argv, "--list-solvers")) {
    std::printf("registered solvers:\n");
    PrintSolverNames(stdout);
    return 0;
  }
  if (const char* workload_path = FlagValue(argc, argv, "--workload")) {
    return RunDeclarativeWorkload(argc, argv, workload_path);
  }

  const char* flag;
  int m = (flag = FlagValue(argc, argv, "--m")) ? std::atoi(flag) : 200;
  int n = (flag = FlagValue(argc, argv, "--n")) ? std::atoi(flag) : 200;
  uint64_t seed =
      (flag = FlagValue(argc, argv, "--seed")) ? std::strtoull(flag, nullptr, 10) : 42;
  std::string dist =
      (flag = FlagValue(argc, argv, "--dist")) ? flag : "uniform";
  std::string solver_name =
      (flag = FlagValue(argc, argv, "--solver")) ? flag : "dc";
  double budget =
      (flag = FlagValue(argc, argv, "--budget")) ? std::atof(flag) : 0.0;
  std::string graph_mode =
      (flag = FlagValue(argc, argv, "--graph")) ? flag : "auto";
  int num_threads =
      (flag = FlagValue(argc, argv, "--threads")) ? std::atoi(flag) : 0;
  const char* tasks_path = FlagValue(argc, argv, "--tasks");
  const char* workers_path = FlagValue(argc, argv, "--workers");
  const char* out_dir = FlagValue(argc, argv, "--out-dir");
  int repeat =
      (flag = FlagValue(argc, argv, "--repeat")) ? std::atoi(flag) : 1;
  if (repeat < 1) repeat = 1;
  engine::CacheMode cache_mode = engine::CacheMode::kOff;
  if ((flag = FlagValue(argc, argv, "--cache")) != nullptr &&
      !ParseCacheMode(flag, &cache_mode)) {
    std::fprintf(stderr, "unknown --cache=%s (off|ro|wo|rw)\n", flag);
    return 1;
  }

  // --- Instance factory (server mode varies the seed per ticket). ---
  auto make_instance = [&](uint64_t s) -> util::StatusOr<core::Instance> {
    if (tasks_path != nullptr && workers_path != nullptr) {
      return io::ReadInstanceCsv(tasks_path, workers_path);
    }
    if (dist == "real") {
      gen::RealWorkloadConfig config;
      config.num_tasks = m;
      config.trajectory.num_taxis = n;
      config.poi.num_pois = m * 8;
      config.start_max = 4.0;
      config.seed = s;
      return gen::GenerateRealInstance(config);
    }
    gen::WorkloadConfig config;
    config.num_tasks = m;
    config.num_workers = n;
    config.start_max = 4.0;
    if (dist == "skewed") {
      config.task_distribution = gen::SpatialDistribution::kSkewed;
      config.worker_distribution = gen::SpatialDistribution::kSkewed;
    } else if (dist != "uniform") {
      return util::Status::InvalidArgument("unknown --dist=" + dist);
    }
    config.seed = s;
    return gen::GenerateInstance(config);
  };

  // --- Configure the engine. ---
  EngineConfig config;
  config.solver_name = solver_name;
  config.solver_options.seed = seed;
  config.budget_seconds = budget;
  config.num_threads = num_threads;
  if (graph_mode == "brute") {
    config.graph_strategy = GraphStrategy::kBruteForce;
  } else if (graph_mode == "grid") {
    config.graph_strategy = GraphStrategy::kGridIndex;
  } else if (graph_mode != "auto") {
    std::fprintf(stderr, "unknown --graph=%s (auto|brute|grid)\n",
                 graph_mode.c_str());
    return 1;
  }

  // --- Server mode: concurrent submitters through the admission layer. ---
  if (HasFlag(argc, argv, "--server")) {
    int submitters =
        (flag = FlagValue(argc, argv, "--submitters")) ? std::atoi(flag) : 4;
    if (submitters < 1) submitters = 1;
    const double stats_window =
        (flag = FlagValue(argc, argv, "--stats-window")) ? std::atof(flag)
                                                         : 0.0;

    engine::ServerConfig server_config;
    server_config.engine = config;
    server_config.num_workers = num_threads > 1 ? num_threads : 1;
    server_config.default_budget_seconds = budget;
    server_config.overload_policy = engine::OverloadPolicy::kBlock;
    server_config.max_queue_depth = submitters * repeat + 1;
    server_config.cache_mode = cache_mode;
    util::StatusOr<std::unique_ptr<engine::Server>> created =
        engine::Server::Create(std::move(server_config));
    if (!created.ok()) {
      std::fprintf(stderr, "server start failed: %s; available solvers:\n",
                   created.status().ToString().c_str());
      PrintSolverNames(stderr);
      return 1;
    }
    std::unique_ptr<engine::Server> server = std::move(created).value();

    std::printf("server   : solver %s, %d workers, %d submitters x %d\n",
                solver_name.c_str(), server_config.num_workers, submitters,
                repeat);

    // Live windowed latency reporting: rotate the server's latency
    // window every --stats-window seconds and print one line per
    // rotation. The final (partial) window is printed after shutdown
    // below, from the main thread once the reporter joined -- so the
    // window counter and stdout are never raced.
    int window_index = 0;
    auto print_window = [&window_index](const obs::HistogramSnapshot& w) {
      ++window_index;
      std::printf(
          "window %2d: %lld finished, p50 %.4f s, p95 %.4f s, "
          "p99 %.4f s, max %.4f s\n",
          window_index, static_cast<long long>(w.count()), w.p50(),
          w.p95(), w.p99(), w.max());
    };
    std::atomic<bool> reporter_stop{false};
    std::thread reporter;
    if (stats_window > 0.0) {
      reporter = std::thread([&] {
        while (!reporter_stop.load(std::memory_order_relaxed)) {
          std::this_thread::sleep_for(
              std::chrono::duration<double>(stats_window));
          print_window(server->RotateLatencyWindow());
        }
      });
    }

    const int total = submitters * repeat;
    std::vector<engine::Ticket> tickets(total);
    std::vector<util::Status> submit_status(total);
    std::vector<std::thread> threads;
    threads.reserve(submitters);
    for (int s = 0; s < submitters; ++s) {
      threads.emplace_back([&, s] {
        util::StatusOr<core::Instance> inst = make_instance(seed + s);
        for (int r = 0; r < repeat; ++r) {
          const int slot = s * repeat + r;
          if (!inst.ok()) {
            submit_status[slot] = inst.status();
            continue;
          }
          auto ticket = server->Submit(inst.value());
          if (ticket.ok()) {
            tickets[slot] = std::move(ticket).value();
          } else {
            submit_status[slot] = ticket.status();
          }
        }
      });
    }
    for (std::thread& t : threads) t.join();

    bool all_ok = true;
    for (int slot = 0; slot < total; ++slot) {
      const int s = slot / repeat;
      if (!tickets[slot].valid()) {
        std::printf("ticket %2d: not admitted: %s\n", slot,
                    submit_status[slot].ToString().c_str());
        all_ok = false;
        continue;
      }
      const util::StatusOr<EngineResult>& run = tickets[slot].Wait();
      if (!run.ok()) {
        std::printf("ticket %2d: %s\n", slot,
                    run.status().ToString().c_str());
        all_ok = false;
        continue;
      }
      // CSV-loaded instances ignore the per-submitter seed (every ticket
      // solves the same file); only claim a seed when one was used.
      std::string source =
          tasks_path != nullptr
              ? "csv"
              : "seed " + std::to_string(seed + static_cast<uint64_t>(s));
      std::printf(
          "ticket %2d: %s, min reliability = %.4f, total_STD = %.4f "
          "(%s graph, %lld edges)%s\n",
          slot, source.c_str(),
          run.value().solve.objectives.min_reliability,
          run.value().solve.objectives.total_std,
          run.value().plan.used_grid_index ? "grid" : "brute",
          static_cast<long long>(run.value().plan.edges),
          run.value().from_cache ? " [cache hit]" : "");
    }
    server->Shutdown(engine::ShutdownMode::kDrain);
    if (stats_window > 0.0) {
      reporter_stop.store(true, std::memory_order_relaxed);
      reporter.join();
      // Flush the last partial window so short runs still get a line.
      print_window(server->RotateLatencyWindow());
    }
    engine::ServerStats stats = server->Stats();
    std::printf(
        "stats    : %lld submitted, %lld admitted, %lld completed, "
        "%lld rejected, %lld shed\n",
        static_cast<long long>(stats.submitted),
        static_cast<long long>(stats.admitted),
        static_cast<long long>(stats.completed),
        static_cast<long long>(stats.rejected),
        static_cast<long long>(stats.shed));
    if (cache_mode != engine::CacheMode::kOff) {
      std::printf(
          "cache    : %lld hits, %lld misses, %lld collapsed, "
          "%lld evictions\n",
          static_cast<long long>(stats.cache_hits),
          static_cast<long long>(stats.cache_misses),
          static_cast<long long>(stats.collapsed),
          static_cast<long long>(stats.cache_evictions));
    }
    std::printf("latency  : p50 %.4f s, p95 %.4f s, max %.4f s\n",
                stats.latency_p50_seconds, stats.latency_p95_seconds,
                stats.latency_max_seconds);
    return all_ok ? 0 : 1;
  }

  // --- Acquire the instance (server mode uses the factory directly). ---
  util::StatusOr<core::Instance> acquired = make_instance(seed);
  if (!acquired.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 acquired.status().ToString().c_str());
    return 1;
  }
  core::Instance instance = std::move(acquired).value();

  util::StatusOr<Engine> engine = Engine::Create(config);
  if (!engine.ok()) {
    std::fprintf(stderr, "unknown --solver=%s; available:\n",
                 solver_name.c_str());
    PrintSolverNames(stderr);
    return 1;
  }

  // --- Solve and report (repetitions exercise the SolveCache). ---
  engine::SolveCache cache;
  RunControls controls;
  if (cache_mode != engine::CacheMode::kOff) {
    controls.cache = &cache;
    controls.cache_mode = cache_mode;
  }
  util::StatusOr<EngineResult> run =
      engine.value().Run(instance, controls);
  if (!run.ok()) {
    std::fprintf(stderr, "solve failed: %s\n",
                 run.status().ToString().c_str());
    return 1;
  }
  const core::SolveResult& result = run.value().solve;
  const GraphPlan& plan = run.value().plan;
  core::AssignmentMetrics metrics =
      core::ComputeMetrics(instance, result.assignment);

  std::printf("instance : %d tasks, %d workers, %lld valid pairs\n",
              instance.num_tasks(), instance.num_workers(),
              static_cast<long long>(plan.edges));
  std::printf("graph    : %s (%.4f s)%s\n",
              plan.used_grid_index ? "grid index" : "brute force",
              plan.build_seconds,
              graph_mode == "auto" ? " [cost-model pick]" : "");
  std::printf("solver   : %s (seed %llu, threads %d)\n",
              std::string(engine.value().solver_display_name()).c_str(),
              static_cast<unsigned long long>(seed), num_threads);
  std::printf("objectives: min reliability = %.4f, total_STD = %.4f\n",
              result.objectives.min_reliability,
              result.objectives.total_std);
  std::printf("time     : %.4f s\n", result.stats.wall_seconds);
  std::printf("structure: %d assigned, %d/%d tasks covered, max roster %d, "
              "mean roster %.2f\n",
              metrics.assigned_workers, metrics.nonempty_tasks,
              instance.num_tasks(), metrics.max_roster, metrics.mean_roster);
  std::printf("rosters  : ");
  for (size_t r = 0; r < metrics.roster_histogram.size(); ++r) {
    std::printf("%zu:%d ", r, metrics.roster_histogram[r]);
  }
  std::printf("\n");

  // Repetitions 2..N replay the identical request; read-enabled modes
  // answer them from the cache (bit-identical to the first solve).
  for (int rep = 2; rep <= repeat; ++rep) {
    auto t0 = std::chrono::steady_clock::now();
    util::StatusOr<EngineResult> again =
        engine.value().Run(instance, controls);
    double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    if (!again.ok()) {
      std::fprintf(stderr, "repeat %d failed: %s\n", rep,
                   again.status().ToString().c_str());
      return 1;
    }
    std::printf("repeat %2d: %s in %.6f s\n", rep,
                again.value().from_cache ? "cache hit " : "cold solve",
                wall);
  }
  if (cache_mode != engine::CacheMode::kOff) {
    engine::CacheStats cache_stats = cache.Stats();
    std::printf(
        "cache    : %lld result hits / %lld misses, %lld graph hits, "
        "%lld entries\n",
        static_cast<long long>(cache_stats.result_hits),
        static_cast<long long>(cache_stats.result_misses),
        static_cast<long long>(cache_stats.graph_hits),
        static_cast<long long>(cache_stats.result_entries +
                               cache_stats.graph_entries));
  }

  if (out_dir != nullptr) {
    std::string dir(out_dir);
    util::Status status =
        io::WriteTasksCsv(dir + "/tasks.csv", instance.tasks());
    if (status.ok()) {
      status = io::WriteWorkersCsv(dir + "/workers.csv", instance.workers());
    }
    if (status.ok()) {
      status = io::WriteAssignmentCsv(dir + "/assignment.csv",
                                      result.assignment);
    }
    if (!status.ok()) {
      std::fprintf(stderr, "write failed: %s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("wrote    : %s/{tasks,workers,assignment}.csv\n", out_dir);
  }
  return 0;
}
