// Command-line workload runner: generate (or load) an RDB-SC instance, run
// one of the approaches, print the objectives plus structural metrics, and
// optionally persist everything as CSV.
//
//   $ ./examples/run_workload --m=200 --n=300 --dist=skewed --solver=dc
//   $ ./examples/run_workload --tasks=t.csv --workers=w.csv --solver=greedy
//   $ ./examples/run_workload --m=100 --n=100 --out-dir=/tmp/run1
//
// Flags: --m, --n, --dist=uniform|skewed|real, --solver=greedy|worker-
// greedy|sampling|dc|gtruth, --seed, --beta, --tasks/--workers (CSV input),
// --out-dir (writes tasks/workers/assignment CSVs).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "core/divide_conquer.h"
#include "core/greedy.h"
#include "core/metrics.h"
#include "core/sampling.h"
#include "core/worker_greedy.h"
#include "gen/trajectory.h"
#include "gen/workload.h"
#include "io/csv.h"

using namespace rdbsc;

namespace {

const char* FlagValue(int argc, char** argv, const char* name) {
  size_t len = std::strlen(name);
  for (int a = 1; a < argc; ++a) {
    if (std::strncmp(argv[a], name, len) == 0 && argv[a][len] == '=') {
      return argv[a] + len + 1;
    }
  }
  return nullptr;
}

std::unique_ptr<core::Solver> MakeSolver(const std::string& name,
                                         uint64_t seed) {
  core::SolverOptions options;
  options.seed = seed;
  if (name == "greedy") return std::make_unique<core::GreedySolver>(options);
  if (name == "worker-greedy") {
    return std::make_unique<core::WorkerGreedySolver>(options);
  }
  if (name == "sampling") {
    return std::make_unique<core::SamplingSolver>(options);
  }
  if (name == "dc") {
    return std::make_unique<core::DivideConquerSolver>(options);
  }
  if (name == "gtruth") {
    return std::make_unique<core::GroundTruthSolver>(options);
  }
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  const char* flag;
  int m = (flag = FlagValue(argc, argv, "--m")) ? std::atoi(flag) : 200;
  int n = (flag = FlagValue(argc, argv, "--n")) ? std::atoi(flag) : 200;
  uint64_t seed =
      (flag = FlagValue(argc, argv, "--seed")) ? std::strtoull(flag, nullptr, 10) : 42;
  std::string dist =
      (flag = FlagValue(argc, argv, "--dist")) ? flag : "uniform";
  std::string solver_name =
      (flag = FlagValue(argc, argv, "--solver")) ? flag : "dc";
  const char* tasks_path = FlagValue(argc, argv, "--tasks");
  const char* workers_path = FlagValue(argc, argv, "--workers");
  const char* out_dir = FlagValue(argc, argv, "--out-dir");

  // --- Acquire the instance. ---
  core::Instance instance;
  if (tasks_path != nullptr && workers_path != nullptr) {
    auto loaded = io::ReadInstanceCsv(tasks_path, workers_path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "load failed: %s\n",
                   loaded.status().ToString().c_str());
      return 1;
    }
    instance = std::move(loaded).value();
  } else if (dist == "real") {
    gen::RealWorkloadConfig config;
    config.num_tasks = m;
    config.trajectory.num_taxis = n;
    config.poi.num_pois = m * 8;
    config.start_max = 4.0;
    config.seed = seed;
    instance = gen::GenerateRealInstance(config);
  } else {
    gen::WorkloadConfig config;
    config.num_tasks = m;
    config.num_workers = n;
    config.start_max = 4.0;
    if (dist == "skewed") {
      config.task_distribution = gen::SpatialDistribution::kSkewed;
      config.worker_distribution = gen::SpatialDistribution::kSkewed;
    } else if (dist != "uniform") {
      std::fprintf(stderr, "unknown --dist=%s\n", dist.c_str());
      return 1;
    }
    config.seed = seed;
    instance = gen::GenerateInstance(config);
  }

  std::unique_ptr<core::Solver> solver = MakeSolver(solver_name, seed);
  if (solver == nullptr) {
    std::fprintf(stderr, "unknown --solver=%s\n", solver_name.c_str());
    return 1;
  }

  // --- Solve and report. ---
  core::CandidateGraph graph = core::CandidateGraph::Build(instance);
  core::SolveResult result = solver->Solve(instance, graph);
  core::AssignmentMetrics metrics =
      core::ComputeMetrics(instance, result.assignment);

  std::printf("instance : %d tasks, %d workers, %lld valid pairs\n",
              instance.num_tasks(), instance.num_workers(),
              static_cast<long long>(graph.NumEdges()));
  std::printf("solver   : %s (seed %llu)\n",
              std::string(solver->name()).c_str(),
              static_cast<unsigned long long>(seed));
  std::printf("objectives: min reliability = %.4f, total_STD = %.4f\n",
              result.objectives.min_reliability,
              result.objectives.total_std);
  std::printf("time     : %.4f s\n", result.stats.wall_seconds);
  std::printf("structure: %d assigned, %d/%d tasks covered, max roster %d, "
              "mean roster %.2f\n",
              metrics.assigned_workers, metrics.nonempty_tasks,
              instance.num_tasks(), metrics.max_roster, metrics.mean_roster);
  std::printf("rosters  : ");
  for (size_t r = 0; r < metrics.roster_histogram.size(); ++r) {
    std::printf("%zu:%d ", r, metrics.roster_histogram[r]);
  }
  std::printf("\n");

  if (out_dir != nullptr) {
    std::string dir(out_dir);
    util::Status status =
        io::WriteTasksCsv(dir + "/tasks.csv", instance.tasks());
    if (status.ok()) {
      status = io::WriteWorkersCsv(dir + "/workers.csv", instance.workers());
    }
    if (status.ok()) {
      status = io::WriteAssignmentCsv(dir + "/assignment.csv",
                                      result.assignment);
    }
    if (!status.ok()) {
      std::fprintf(stderr, "write failed: %s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("wrote    : %s/{tasks,workers,assignment}.csv\n", out_dir);
  }
  return 0;
}
