// Command-line workload runner: generate (or load) an RDB-SC instance, run
// one of the registered approaches through the Engine facade, print the
// objectives plus structural metrics, and optionally persist everything as
// CSV.
//
//   $ ./examples/run_workload --m=200 --n=300 --dist=skewed --solver=dc
//   $ ./examples/run_workload --tasks=t.csv --workers=w.csv --solver=greedy
//   $ ./examples/run_workload --m=100 --n=100 --out-dir=/tmp/run1
//   $ ./examples/run_workload --list-solvers
//
// Flags: --m, --n, --dist=uniform|skewed|real, --solver=<registry name>
// (see --list-solvers), --seed, --budget=<seconds> (wall-clock admission
// budget), --graph=auto|brute|grid (candidate-graph construction; auto
// consults the Appendix I cost model), --threads=N (engine thread pool;
// 0 = serial, results identical at every setting), --tasks/--workers
// (CSV input), --out-dir (writes tasks/workers/assignment CSVs).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/metrics.h"
#include "core/registry.h"
#include "engine/engine.h"
#include "gen/trajectory.h"
#include "gen/workload.h"
#include "io/csv.h"

using namespace rdbsc;

namespace {

const char* FlagValue(int argc, char** argv, const char* name) {
  size_t len = std::strlen(name);
  for (int a = 1; a < argc; ++a) {
    if (std::strncmp(argv[a], name, len) == 0 && argv[a][len] == '=') {
      return argv[a] + len + 1;
    }
  }
  return nullptr;
}

bool HasFlag(int argc, char** argv, const char* name) {
  for (int a = 1; a < argc; ++a) {
    if (std::strcmp(argv[a], name) == 0) return true;
  }
  return false;
}

void PrintSolverNames(std::FILE* out) {
  for (const std::string& name : core::SolverRegistry::Global().Names()) {
    std::fprintf(out, "  %s\n", name.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (HasFlag(argc, argv, "--list-solvers")) {
    std::printf("registered solvers:\n");
    PrintSolverNames(stdout);
    return 0;
  }

  const char* flag;
  int m = (flag = FlagValue(argc, argv, "--m")) ? std::atoi(flag) : 200;
  int n = (flag = FlagValue(argc, argv, "--n")) ? std::atoi(flag) : 200;
  uint64_t seed =
      (flag = FlagValue(argc, argv, "--seed")) ? std::strtoull(flag, nullptr, 10) : 42;
  std::string dist =
      (flag = FlagValue(argc, argv, "--dist")) ? flag : "uniform";
  std::string solver_name =
      (flag = FlagValue(argc, argv, "--solver")) ? flag : "dc";
  double budget =
      (flag = FlagValue(argc, argv, "--budget")) ? std::atof(flag) : 0.0;
  std::string graph_mode =
      (flag = FlagValue(argc, argv, "--graph")) ? flag : "auto";
  int num_threads =
      (flag = FlagValue(argc, argv, "--threads")) ? std::atoi(flag) : 0;
  const char* tasks_path = FlagValue(argc, argv, "--tasks");
  const char* workers_path = FlagValue(argc, argv, "--workers");
  const char* out_dir = FlagValue(argc, argv, "--out-dir");

  // --- Acquire the instance. ---
  core::Instance instance;
  if (tasks_path != nullptr && workers_path != nullptr) {
    auto loaded = io::ReadInstanceCsv(tasks_path, workers_path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "load failed: %s\n",
                   loaded.status().ToString().c_str());
      return 1;
    }
    instance = std::move(loaded).value();
  } else if (dist == "real") {
    gen::RealWorkloadConfig config;
    config.num_tasks = m;
    config.trajectory.num_taxis = n;
    config.poi.num_pois = m * 8;
    config.start_max = 4.0;
    config.seed = seed;
    instance = gen::GenerateRealInstance(config);
  } else {
    gen::WorkloadConfig config;
    config.num_tasks = m;
    config.num_workers = n;
    config.start_max = 4.0;
    if (dist == "skewed") {
      config.task_distribution = gen::SpatialDistribution::kSkewed;
      config.worker_distribution = gen::SpatialDistribution::kSkewed;
    } else if (dist != "uniform") {
      std::fprintf(stderr, "unknown --dist=%s\n", dist.c_str());
      return 1;
    }
    config.seed = seed;
    instance = gen::GenerateInstance(config);
  }

  // --- Configure the engine. ---
  EngineConfig config;
  config.solver_name = solver_name;
  config.solver_options.seed = seed;
  config.budget_seconds = budget;
  config.num_threads = num_threads;
  if (graph_mode == "brute") {
    config.graph_strategy = GraphStrategy::kBruteForce;
  } else if (graph_mode == "grid") {
    config.graph_strategy = GraphStrategy::kGridIndex;
  } else if (graph_mode != "auto") {
    std::fprintf(stderr, "unknown --graph=%s (auto|brute|grid)\n",
                 graph_mode.c_str());
    return 1;
  }

  util::StatusOr<Engine> engine = Engine::Create(config);
  if (!engine.ok()) {
    std::fprintf(stderr, "unknown --solver=%s; available:\n",
                 solver_name.c_str());
    PrintSolverNames(stderr);
    return 1;
  }

  // --- Solve and report. ---
  util::StatusOr<EngineResult> run = engine.value().Run(instance);
  if (!run.ok()) {
    std::fprintf(stderr, "solve failed: %s\n",
                 run.status().ToString().c_str());
    return 1;
  }
  const core::SolveResult& result = run.value().solve;
  const GraphPlan& plan = run.value().plan;
  core::AssignmentMetrics metrics =
      core::ComputeMetrics(instance, result.assignment);

  std::printf("instance : %d tasks, %d workers, %lld valid pairs\n",
              instance.num_tasks(), instance.num_workers(),
              static_cast<long long>(plan.edges));
  std::printf("graph    : %s (%.4f s)%s\n",
              plan.used_grid_index ? "grid index" : "brute force",
              plan.build_seconds,
              graph_mode == "auto" ? " [cost-model pick]" : "");
  std::printf("solver   : %s (seed %llu, threads %d)\n",
              std::string(engine.value().solver_display_name()).c_str(),
              static_cast<unsigned long long>(seed), num_threads);
  std::printf("objectives: min reliability = %.4f, total_STD = %.4f\n",
              result.objectives.min_reliability,
              result.objectives.total_std);
  std::printf("time     : %.4f s\n", result.stats.wall_seconds);
  std::printf("structure: %d assigned, %d/%d tasks covered, max roster %d, "
              "mean roster %.2f\n",
              metrics.assigned_workers, metrics.nonempty_tasks,
              instance.num_tasks(), metrics.max_roster, metrics.mean_roster);
  std::printf("rosters  : ");
  for (size_t r = 0; r < metrics.roster_histogram.size(); ++r) {
    std::printf("%zu:%d ", r, metrics.roster_histogram[r]);
  }
  std::printf("\n");

  if (out_dir != nullptr) {
    std::string dir(out_dir);
    util::Status status =
        io::WriteTasksCsv(dir + "/tasks.csv", instance.tasks());
    if (status.ok()) {
      status = io::WriteWorkersCsv(dir + "/workers.csv", instance.workers());
    }
    if (status.ok()) {
      status = io::WriteAssignmentCsv(dir + "/assignment.csv",
                                      result.assignment);
    }
    if (!status.ok()) {
      std::fprintf(stderr, "write failed: %s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("wrote    : %s/{tasks,workers,assignment}.csv\n", out_dir);
  }
  return 0;
}
