// Quickstart: build a tiny RDB-SC instance by hand, run every registered
// approach through the Engine facade, and print the two objectives of
// Definition 4.
//
//   $ ./examples/quickstart

#include <cstdio>
#include <numbers>
#include <string>
#include <vector>

#include "core/instance.h"
#include "core/registry.h"
#include "engine/engine.h"

using namespace rdbsc;  // example code; library code never does this

int main() {
  constexpr double kPi = std::numbers::pi;

  // Two spatial tasks: photograph a statue (spatial diversity matters,
  // beta = 0.8) and monitor a parking lot over the morning (temporal
  // diversity matters, beta = 0.2).
  std::vector<core::Task> tasks;
  core::Task statue;
  statue.location = {0.5, 0.5};
  statue.start = 0.0;
  statue.end = 2.0;  // hours
  statue.beta = 0.8;
  tasks.push_back(statue);

  core::Task parking;
  parking.location = {0.7, 0.3};
  parking.start = 0.0;
  parking.end = 4.0;
  parking.beta = 0.2;
  tasks.push_back(parking);

  // Six moving workers approaching from different directions, each with a
  // travel cone, a speed (space units per hour) and a confidence.
  std::vector<core::Worker> workers;
  const double angles[] = {0.0,      kPi / 3,  2 * kPi / 3,
                           kPi,      4 * kPi / 3, 5 * kPi / 3};
  for (int i = 0; i < 6; ++i) {
    core::Worker w;
    w.location = {0.5 + 0.3 * std::cos(angles[i]),
                  0.5 + 0.3 * std::sin(angles[i])};
    w.velocity = 0.25 + 0.05 * i;
    // Each worker is willing to walk towards the city center.
    w.direction = geo::AngularInterval(angles[i] + kPi - kPi / 3,
                                       angles[i] + kPi + kPi / 3);
    w.confidence = 0.85 + 0.02 * i;
    workers.push_back(w);
  }

  core::Instance instance(std::move(tasks), std::move(workers));
  std::printf("instance: %d tasks, %d workers\n\n", instance.num_tasks(),
              instance.num_workers());

  // The instance is tiny, so even the "exact" enumeration oracle runs.
  for (const std::string& name : core::SolverRegistry::Global().Names()) {
    EngineConfig config;
    config.solver_name = name;
    util::StatusOr<Engine> engine = Engine::Create(config);
    util::StatusOr<EngineResult> run = engine.value().Run(instance);
    if (!run.ok()) {
      std::printf("%-13s failed: %s\n", name.c_str(),
                  run.status().ToString().c_str());
      continue;
    }
    const core::SolveResult& result = run.value().solve;
    std::printf("%-13s (%-7s) min reliability = %.4f, total_STD = %.4f\n",
                name.c_str(),
                std::string(engine.value().solver_display_name()).c_str(),
                result.objectives.min_reliability,
                result.objectives.total_std);
    for (core::WorkerId j = 0; j < instance.num_workers(); ++j) {
      core::TaskId i = result.assignment.TaskOf(j);
      std::printf("    worker %d -> %s\n", j,
                  i == core::kNoTask ? "(unassigned)"
                  : i == 0           ? "statue"
                                     : "parking");
    }
  }
  return 0;
}
