// Landmark photography (Example 1 of the paper, and the Figs 19-20
// showcase substitute): one landmark task, a crowd of moving workers, and
// a report of the camera-angle coverage each approach achieves -- the
// quantity that determines how well a 3-D model could be reconstructed
// from the collected photos.
//
//   $ ./examples/landmark_photos

#include <algorithm>
#include <cstdio>
#include <numbers>
#include <string>
#include <vector>

#include "core/diversity.h"
#include "engine/engine.h"
#include "util/rng.h"

using namespace rdbsc;

namespace {

// 16-slot ASCII dial of the camera angles around the landmark.
void PrintAngleDial(const std::vector<double>& angles) {
  const int kSlots = 16;
  std::vector<int> slots(kSlots, 0);
  for (double a : angles) {
    int s = static_cast<int>(geo::NormalizeAngle(a) / geo::kTwoPi * kSlots);
    ++slots[std::min(s, kSlots - 1)];
  }
  std::printf("    angle dial [0..2pi): ");
  for (int s = 0; s < kSlots; ++s) {
    std::printf("%c", slots[s] == 0 ? '.' : (slots[s] > 9 ? '+' : '0' + slots[s]));
  }
  std::printf("\n");
}

}  // namespace

int main() {
  constexpr double kPi = std::numbers::pi;
  util::Rng rng(2025);

  // The landmark: a statue with a 3-hour shooting window; the requester
  // cares mostly about spatial coverage (beta = 0.9).
  core::Task statue;
  statue.location = {0.5, 0.5};
  statue.start = 0.0;
  statue.end = 3.0;
  statue.beta = 0.9;

  // A competing task: the firework show over the harbor, a little to the
  // east, with the same window. Solvers must split the crowd between the
  // two, which is where their quality differs.
  core::Task fireworks;
  fireworks.location = {0.62, 0.48};
  fireworks.start = 0.0;
  fireworks.end = 3.0;
  fireworks.beta = 0.9;

  // 40 pedestrians scattered around the statue, each moving roughly
  // towards it (with a +-30 degree cone) at walking speed. Most of them
  // can also reach the fireworks site.
  std::vector<core::Worker> workers;
  for (int i = 0; i < 40; ++i) {
    double bearing = rng.Uniform(0.0, geo::kTwoPi);
    double radius = rng.Uniform(0.1, 0.45);
    core::Worker w;
    w.location = {0.5 + radius * std::cos(bearing),
                  0.5 + radius * std::sin(bearing)};
    double towards = geo::Bearing(w.location, statue.location);
    w.direction = geo::AngularInterval(towards - kPi / 6, towards + kPi / 6);
    w.velocity = rng.Uniform(0.15, 0.35);
    w.confidence = rng.Uniform(0.75, 0.98);
    workers.push_back(w);
  }

  core::Instance instance({statue, fireworks}, std::move(workers));

  // One engine per approach; the facade handles graph construction.
  std::vector<Engine> engines;
  for (const char* name : {"greedy", "sampling", "dc"}) {
    engines.push_back(
        Engine::Create(name).value());
  }

  core::CandidateGraph graph = engines.front().BuildGraph(instance).value();
  std::printf("landmark task: %d candidate photographers\n\n",
              static_cast<int>(graph.WorkersOf(0).size()));
  for (Engine& engine : engines) {
    core::SolveResult result =
        engine.SolveOn(instance, graph).value();
    std::printf("%-9s total_STD = %.3f, min reliability = %.4f\n",
                std::string(engine.solver_display_name()).c_str(),
                result.objectives.total_std,
                result.objectives.min_reliability);
    const char* task_names[] = {"statue", "fireworks"};
    for (core::TaskId t = 0; t < instance.num_tasks(); ++t) {
      std::vector<double> angles;
      for (core::WorkerId j = 0; j < instance.num_workers(); ++j) {
        if (result.assignment.TaskOf(j) == t) {
          angles.push_back(
              core::ApproachAngle(instance.task(t), instance.worker(j)));
        }
      }
      std::printf("  %-10s %2zu photographers, SD entropy = %.3f\n",
                  task_names[t], angles.size(),
                  core::SpatialDiversity(angles));
      PrintAngleDial(angles);
    }
  }
  std::printf(
      "\nHigher SD entropy = more viewpoints covered = better 3-D "
      "reconstruction (Figs 19-20 of the paper).\n");
  return 0;
}
