// Parking-space monitoring (Example 2 of the paper): several parking lots
// must be photographed from diverse directions AND at diverse times of the
// morning so the availability trend can be predicted. Temporal diversity
// is weighted up (beta = 0.3), and the collected answers are grouped with
// the Section 2.3 answer-aggregation scheme.
//
//   $ ./examples/parking_monitor

#include <cstdio>
#include <vector>

#include "core/diversity.h"
#include "engine/engine.h"
#include "gen/workload.h"
#include "sim/aggregation.h"
#include "util/rng.h"

using namespace rdbsc;

int main() {
  util::Rng rng(7);

  // Four parking lots, each open for the 6-hour morning window.
  std::vector<core::Task> lots;
  const geo::Point locations[] = {{0.2, 0.2}, {0.8, 0.25}, {0.5, 0.7},
                                  {0.3, 0.85}};
  for (const geo::Point& loc : locations) {
    core::Task lot;
    lot.location = loc;
    lot.start = 0.0;
    lot.end = 6.0;
    lot.beta = 0.3;  // trend prediction wants temporal spread
    lots.push_back(lot);
  }

  // A morning crowd of 60 commuters with tight direction cones.
  gen::WorkloadConfig crowd;
  crowd.num_tasks = 0;
  crowd.num_workers = 60;
  crowd.angle_range = 1.2;
  crowd.v_min = 0.1;
  crowd.v_max = 0.3;
  crowd.p_min = 0.8;
  crowd.p_max = 1.0;
  crowd.seed = 99;
  core::Instance crowd_only = gen::GenerateInstance(crowd);
  std::vector<core::Worker> workers(crowd_only.workers());

  core::Instance instance(lots, workers);

  Engine engine = Engine::Create("dc").value();
  core::SolveResult result = engine.Run(instance).value().solve;
  std::printf("D&C assignment: min reliability = %.4f, total_STD = %.4f\n\n",
              result.objectives.min_reliability,
              result.objectives.total_std);

  // Simulate the returned photos and aggregate them per lot.
  for (core::TaskId lot_id = 0; lot_id < instance.num_tasks(); ++lot_id) {
    const core::Task& lot = instance.task(lot_id);
    std::vector<sim::Answer> photos;
    for (core::WorkerId j = 0; j < instance.num_workers(); ++j) {
      if (result.assignment.TaskOf(j) != lot_id) continue;
      const core::Worker& w = instance.worker(j);
      if (!rng.Bernoulli(w.confidence)) continue;  // no-show
      core::Observation obs =
          core::MakeObservation(lot, w, 0.0, core::ArrivalPolicy::kStrict);
      photos.push_back(sim::Answer{.task = lot_id,
                                   .worker = j,
                                   .angle = obs.angle,
                                   .time = obs.arrival,
                                   .quality = rng.Uniform(0.4, 1.0)});
    }
    sim::AggregationConfig agg;
    agg.angle_buckets = 6;
    agg.time_buckets = 3;
    std::vector<sim::Answer> reps = sim::AggregateAnswers(lot, photos, agg);
    std::printf("lot %d: %zu photos -> %zu representatives\n", lot_id,
                photos.size(), reps.size());
    for (const sim::Answer& rep : reps) {
      std::printf("    worker %2d  angle %5.2f rad  t=%4.2f h  quality %.2f\n",
                  rep.worker, rep.angle, rep.time, rep.quality);
    }
  }
  return 0;
}
